package vm

import (
	"fmt"
	"math"

	"dca/internal/ir"
	"dca/internal/types"
)

// Opcodes. The dispatch loop switches on these; Go compiles the dense
// uint8 switch to a jump table.
const (
	opMov uint8 = iota
	opBin     // a=dst, b=x, c=y, k=BinKind
	opNeg     // a=dst, b=x
	opNot     // a=dst, b=x
	opLoad    // a=dst, b=base, c=index
	opStore   // a=base, b=index, c=src
	opAllocS  // a=dst, d=allocs index (struct)
	opAllocA  // a=dst, b=count, d=allocs index (array)
	opCall    // a=dst|-1, b=argPool off, n=argc, d=calls index
	opCallB   // a=dst|-1, b=argPool off, n=argc, d=names index
	opIntr    // a=dst|-1, b=argPool off, n=argc, d=names index
	opPrint   // b=argPool off, n=argc
	opGoto    // d=target block index
	opIf      // b=cond, d=then block, c=else block
	opRet     // c=1: value at b; c=0: void
	opLoadBin // fused load+binop: load as opLoad, ext[d]={binDst,other,side}, k=BinKind
	opCmpBr   // fused cmp+If: cmp as opBin, ext[d]={then,else} block indices
	opErr     // d=errs index; c=1: terminator position (raw), else instruction (wrapped)
)

// inst is one bytecode instruction: 20 bytes, flat in fnCode.ins. Operand
// fields b/c (and a for opStore, argPool entries) encode a register index
// when >= 0 and a constant-pool index i as ^i when negative.
type inst struct {
	op uint8
	k  uint8  // BinKind for opBin/opLoadBin/opCmpBr
	n  uint16 // argument count
	a  int32
	b  int32
	c  int32
	d  int32
}

// instMeta is the cold-path side table, parallel to ins: the originating IR
// instruction(s) for error wrapping and the owning block for budget/cancel
// reports. Never touched while dispatch stays on the happy path. Deliberately
// pointer-free (indices into fc.blocks and the block's Instrs), so the two
// large per-instruction tables sit in unscanned spans — the dynamic stage
// compiles one rewritten function per loop, and scanning that garbage was
// measurable against the whole suite.
type instMeta struct {
	blk int32 // index into fc.blocks of the owning block
	in1 int32 // index into the owning block's Instrs; -1 = none (terminator)
	in2 int32 // second component of a fused pair; -1 = none
}

type blockInfo struct {
	b    *ir.Block
	pc   int32
	cost int64 // len(Instrs)+1, the per-entry block-count increment
}

// allocInfo pre-resolves everything an Alloc site needs: the struct layout
// or the array element type with its precomputed type name and zero value.
type allocInfo struct {
	si       *types.StructInfo
	elem     *types.Type
	typeName string
	zero     ir.Value
}

// callSite records one non-builtin call compiled into a function, for
// validating cached code against a new program: the name, the *ir.Func it
// resolved to (nil if unresolved), and the fnCode linked into calls (nil
// when the site compiled to opErr).
type callSite struct {
	name string
	fn   *ir.Func
	code *fnCode
}

// fnCode is one compiled function.
type fnCode struct {
	fn      *ir.Func
	nLocals int
	ins     []inst
	meta    []instMeta
	blocks  []blockInfo
	consts  []ir.Value // interned constant pool
	argPool []int32    // flattened operand lists for call-like ops
	ext     []int32    // extra operand slots for fused ops
	names   []string   // builtin / intrinsic names
	allocs  []allocInfo
	calls   []*fnCode  // resolved call targets
	errs    []error    // precomputed errors for opErr
	sites   []callSite // call sites, for cross-program cache validation
}

// blkOf resolves the block owning pc (cold paths only).
func (fc *fnCode) blkOf(pc int32) *ir.Block { return fc.blocks[fc.meta[pc].blk].b }

// in1Of / in2Of resolve the originating IR instruction(s) at pc for error
// wrapping (cold paths only).
func (fc *fnCode) in1Of(pc int32) ir.Instr {
	md := &fc.meta[pc]
	if md.in1 < 0 {
		return nil
	}
	return fc.blocks[md.blk].b.Instrs[md.in1]
}

func (fc *fnCode) in2Of(pc int32) ir.Instr {
	md := &fc.meta[pc]
	if md.in2 < 0 {
		return nil
	}
	return fc.blocks[md.blk].b.Instrs[md.in2]
}

// progCode is a compiled program: immutable after compile, shared by every
// Machine executing the program (golden run and all replays).
type progCode struct {
	prog   *ir.Program
	fns    []*fnCode
	byFn   map[*ir.Func]*fnCode
	byName map[string]*ir.Func
}

// compiled returns prog's bytecode, compiling at most once per program via
// the IR-level exec cache.
func compiled(prog *ir.Program) *progCode {
	return prog.ExecCache(func() any { return compile(prog) }).(*progCode)
}

func compile(prog *ir.Program) *progCode {
	p := &progCode{
		prog:   prog,
		byFn:   make(map[*ir.Func]*fnCode, len(prog.Funcs)),
		byName: make(map[string]*ir.Func, len(prog.Funcs)),
	}
	for _, fn := range prog.Funcs {
		p.byName[fn.Name] = fn
	}
	// Reuse cached per-function code where it is still valid. Programs built
	// with ir.Program.CloneShared share every function but the rewritten one,
	// so for the dynamic stage — hundreds of instrumented clones of the same
	// program — almost everything here is a cache hit. Cached code for fn is
	// reusable only if every call site still resolves to the same *ir.Func
	// in THIS program and the linked callee code is itself being reused;
	// otherwise the cached code could chain to a stale callee body. The
	// pruning loop runs this to a fixed point (cycles between mutually
	// recursive functions fall out naturally).
	cand := map[*ir.Func]*fnCode{}
	for _, fn := range prog.Funcs {
		if fc, ok := fn.ExecCode().(*fnCode); ok {
			cand[fn] = fc
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fc := range cand {
			ok := true
			for _, s := range fc.sites {
				if p.byName[s.name] != s.fn || (s.code != nil && cand[s.fn] != s.code) {
					ok = false
					break
				}
			}
			if !ok {
				delete(cand, fn)
				changed = true
			}
		}
	}
	var fresh []*fnCode
	for _, fn := range prog.Funcs {
		fc := cand[fn]
		if fc == nil {
			fc = &fnCode{fn: fn, nLocals: len(fn.Locals)}
			fresh = append(fresh, fc)
		}
		p.fns = append(p.fns, fc)
		p.byFn[fn] = fc
	}
	for _, fc := range fresh {
		compileFn(p, fc)
		fc.fn.SetExecCode(fc)
	}
	return p
}

// constKey interns constants by exact bits: floats by their IEEE bit
// pattern so 0.0 and -0.0 stay distinct.
type constKey struct {
	kind ir.ValKind
	i    int64
	f    uint64
	s    string
	ref  *ir.Object
}

// fnCompiler carries the per-function interning state.
type fnCompiler struct {
	p      *progCode
	fc     *fnCode
	consts map[constKey]int32
	names  map[string]int32
	blkIdx map[*ir.Block]int32
}

func compileFn(p *progCode, fc *fnCode) {
	c := &fnCompiler{
		p:      p,
		fc:     fc,
		consts: map[constKey]int32{},
		names:  map[string]int32{},
		blkIdx: map[*ir.Block]int32{},
	}
	// The tree-walker follows Term successor pointers, not the Blocks list,
	// so compile the successor closure: Blocks plus any stray reachable
	// block.
	var blocks []*ir.Block
	add := func(b *ir.Block) {
		if b == nil {
			return
		}
		if _, ok := c.blkIdx[b]; !ok {
			c.blkIdx[b] = int32(len(blocks))
			blocks = append(blocks, b)
		}
	}
	for _, b := range fc.fn.Blocks {
		add(b)
	}
	for scan := 0; scan < len(blocks); scan++ {
		if t := blocks[scan].Term; t != nil {
			for _, s := range t.Succs() {
				add(s)
			}
		}
	}
	fc.blocks = make([]blockInfo, len(blocks))
	for bi, b := range blocks {
		fc.blocks[bi] = blockInfo{b: b, pc: int32(len(fc.ins)), cost: int64(len(b.Instrs)) + 1}
		c.compileBlock(b)
	}
}

func (c *fnCompiler) emit(in inst, m instMeta) {
	c.fc.ins = append(c.fc.ins, in)
	c.fc.meta = append(c.fc.meta, m)
}

func (c *fnCompiler) operand(o ir.Operand) int32 {
	if o.Local != nil {
		return int32(o.Local.Index)
	}
	v := o.Const
	k := constKey{kind: v.Kind, i: v.I, f: math.Float64bits(v.F), s: v.S, ref: v.Ref}
	if i, ok := c.consts[k]; ok {
		return ^i
	}
	i := int32(len(c.fc.consts))
	c.fc.consts = append(c.fc.consts, v)
	c.consts[k] = i
	return ^i
}

func (c *fnCompiler) args(ops []ir.Operand) (int32, uint16) {
	off := int32(len(c.fc.argPool))
	for _, o := range ops {
		c.fc.argPool = append(c.fc.argPool, c.operand(o))
	}
	return off, uint16(len(ops))
}

func (c *fnCompiler) name(s string) int32 {
	if i, ok := c.names[s]; ok {
		return i
	}
	i := int32(len(c.fc.names))
	c.fc.names = append(c.fc.names, s)
	c.names[s] = i
	return i
}

func (c *fnCompiler) errIdx(err error) int32 {
	c.fc.errs = append(c.fc.errs, err)
	return int32(len(c.fc.errs) - 1)
}

func dstIdx(l *ir.Local) int32 {
	if l == nil {
		return -1
	}
	return int32(l.Index)
}

func (c *fnCompiler) compileBlock(b *ir.Block) {
	bi := c.blkIdx[b]
	// Superinstruction selection. cmp+branch: a comparison whose result
	// feeds the block's If directly fuses with the terminator. It wins over
	// load+binop when both match the same BinOp: branches end every block
	// iteration while a fused load only saves decode.
	fuseCB := false
	if ifT, ok := b.Term.(*ir.If); ok && len(b.Instrs) > 0 {
		if bo, ok2 := b.Instrs[len(b.Instrs)-1].(*ir.BinOp); ok2 && bo.Op.IsComparison() && ifT.Cond.Local == bo.Dst {
			fuseCB = true
		}
	}
	nin := len(b.Instrs)
	stop := nin
	if fuseCB {
		stop = nin - 1
	}
	for ii := 0; ii < stop; ii++ {
		// load+binop: a Load whose destination is consumed by the next
		// instruction's BinOp fuses into one decoded superinstruction.
		if ld, ok := b.Instrs[ii].(*ir.Load); ok && ii+1 < stop {
			if bo, ok2 := b.Instrs[ii+1].(*ir.BinOp); ok2 {
				xd := bo.X.Local != nil && bo.X.Local == ld.Dst
				yd := bo.Y.Local != nil && bo.Y.Local == ld.Dst
				if xd || yd {
					side, other := int32(0), int32(0)
					switch {
					case xd && yd:
						side = 2
					case yd:
						side, other = 1, c.operand(bo.X)
					default:
						other = c.operand(bo.Y)
					}
					ext := int32(len(c.fc.ext))
					c.fc.ext = append(c.fc.ext, int32(bo.Dst.Index), other, side)
					c.emit(inst{op: opLoadBin, k: uint8(bo.Op), a: int32(ld.Dst.Index), b: c.operand(ld.Base), c: c.operand(ld.Index), d: ext},
						instMeta{blk: bi, in1: int32(ii), in2: int32(ii + 1)})
					ii++
					continue
				}
			}
		}
		c.compileInstr(b, bi, int32(ii))
	}
	if fuseCB {
		bo := b.Instrs[nin-1].(*ir.BinOp)
		ifT := b.Term.(*ir.If)
		ext := int32(len(c.fc.ext))
		c.fc.ext = append(c.fc.ext, c.target(ifT.Then), c.target(ifT.Else))
		c.emit(inst{op: opCmpBr, k: uint8(bo.Op), a: int32(bo.Dst.Index), b: c.operand(bo.X), c: c.operand(bo.Y), d: ext},
			instMeta{blk: bi, in1: int32(nin - 1), in2: -1})
		return
	}
	c.compileTerm(b)
}

// target returns the block index for a successor, or -1 for a nil
// successor (executed as opNilBlk's nil-dereference panic, like the
// tree-walker).
func (c *fnCompiler) target(b *ir.Block) int32 {
	if b == nil {
		return -1
	}
	return c.blkIdx[b]
}

func (c *fnCompiler) compileInstr(b *ir.Block, bi, ii int32) {
	in := b.Instrs[ii]
	m := instMeta{blk: bi, in1: ii, in2: -1}
	switch i := in.(type) {
	case *ir.Mov:
		c.emit(inst{op: opMov, a: int32(i.Dst.Index), b: c.operand(i.Src)}, m)
	case *ir.BinOp:
		c.emit(inst{op: opBin, k: uint8(i.Op), a: int32(i.Dst.Index), b: c.operand(i.X), c: c.operand(i.Y)}, m)
	case *ir.UnOp:
		op := opNeg
		if i.Op == ir.Not {
			op = opNot
		}
		c.emit(inst{op: op, a: int32(i.Dst.Index), b: c.operand(i.X)}, m)
	case *ir.Load:
		c.emit(inst{op: opLoad, a: int32(i.Dst.Index), b: c.operand(i.Base), c: c.operand(i.Index)}, m)
	case *ir.Store:
		c.emit(inst{op: opStore, a: c.operand(i.Base), b: c.operand(i.Index), c: c.operand(i.Src)}, m)
	case *ir.Alloc:
		ai := int32(len(c.fc.allocs))
		if i.Struct != nil {
			c.fc.allocs = append(c.fc.allocs, allocInfo{si: i.Struct, typeName: i.Struct.Name})
			c.emit(inst{op: opAllocS, a: int32(i.Dst.Index), d: ai}, m)
		} else {
			c.fc.allocs = append(c.fc.allocs, allocInfo{elem: i.Elem, typeName: "[]" + i.Elem.String(), zero: ir.ZeroValue(i.Elem)})
			c.emit(inst{op: opAllocA, a: int32(i.Dst.Index), b: c.operand(i.Count), d: ai}, m)
		}
	case *ir.Call:
		off, n := c.args(i.Args)
		if i.Builtin {
			c.emit(inst{op: opCallB, a: dstIdx(i.Dst), b: off, n: n, d: c.name(i.Callee)}, m)
			return
		}
		callee := c.p.byName[i.Callee]
		if callee == nil {
			c.fc.sites = append(c.fc.sites, callSite{name: i.Callee})
			c.emit(inst{op: opErr, d: c.errIdx(fmt.Errorf("unknown function %q", i.Callee))}, m)
			return
		}
		if len(i.Args) != len(callee.Params) {
			c.fc.sites = append(c.fc.sites, callSite{name: i.Callee, fn: callee})
			c.emit(inst{op: opErr, d: c.errIdx(fmt.Errorf("interp: call %s with %d args, want %d", callee.Name, len(i.Args), len(callee.Params)))}, m)
			return
		}
		ci := int32(len(c.fc.calls))
		c.fc.calls = append(c.fc.calls, c.p.byFn[callee])
		c.fc.sites = append(c.fc.sites, callSite{name: i.Callee, fn: callee, code: c.p.byFn[callee]})
		c.emit(inst{op: opCall, a: dstIdx(i.Dst), b: off, n: n, d: ci}, m)
	case *ir.Print:
		off, n := c.args(i.Args)
		c.emit(inst{op: opPrint, b: off, n: n}, m)
	case *ir.Intrinsic:
		off, n := c.args(i.Args)
		c.emit(inst{op: opIntr, a: dstIdx(i.Dst), b: off, n: n, d: c.name(i.Name)}, m)
	default:
		c.emit(inst{op: opErr, d: c.errIdx(fmt.Errorf("interp: unknown instruction %T", in))}, m)
	}
}

func (c *fnCompiler) compileTerm(b *ir.Block) {
	m := instMeta{blk: c.blkIdx[b], in1: -1, in2: -1}
	switch t := b.Term.(type) {
	case *ir.Goto:
		c.emit(inst{op: opGoto, d: c.target(t.Target)}, m)
	case *ir.If:
		c.emit(inst{op: opIf, b: c.operand(t.Cond), d: c.target(t.Then), c: c.target(t.Else)}, m)
	case *ir.Ret:
		if t.Val == nil {
			c.emit(inst{op: opRet}, m)
		} else {
			c.emit(inst{op: opRet, b: c.operand(*t.Val), c: 1}, m)
		}
	default:
		c.emit(inst{op: opErr, c: 1, d: c.errIdx(fmt.Errorf("interp: %s: block %s has bad terminator", c.fc.fn.Name, b.Name))}, m)
	}
}
