package instrument_test

import (
	"strings"
	"testing"

	"dca/internal/dcart"
	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// run executes the instrumented program under a schedule and returns the
// runtime and printed output.
func run(t *testing.T, inst *instrument.Instrumented, sched dcart.Schedule) (*dcart.Runtime, string) {
	t.Helper()
	rt := dcart.NewRuntime(sched)
	var out strings.Builder
	if _, err := interp.Run(inst.Prog, interp.Config{Out: &out, Runtime: rt}); err != nil {
		t.Fatalf("instrumented run (%s): %v", sched.Name(), err)
	}
	return rt, out.String()
}

const sumSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { a[i] = (i * 7) % 11; }
	var s int = 0;
	for (var i int = 0; i < 16; i++) { s += a[i]; }
	print(s);
}
`

func TestInstrumentPreservesSemantics(t *testing.T) {
	prog := compile(t, sumSrc)
	var ref strings.Builder
	if _, err := interp.Run(prog, interp.Config{Out: &ref}); err != nil {
		t.Fatal(err)
	}
	for loopIdx := 0; loopIdx < 2; loopIdx++ {
		inst, err := instrument.Loop(prog, "main", loopIdx)
		if err != nil {
			t.Fatalf("instrument L%d: %v", loopIdx, err)
		}
		for _, sched := range []dcart.Schedule{dcart.Identity{}, dcart.Reverse{}, dcart.Random{Seed: 5}, dcart.Rotate{}} {
			rt, out := run(t, inst, sched)
			if out != ref.String() {
				t.Errorf("L%d under %s: output %q != reference %q", loopIdx, sched.Name(), out, ref.String())
			}
			if rt.Invocations != 1 {
				t.Errorf("L%d: invocations = %d", loopIdx, rt.Invocations)
			}
			if rt.Iterations != 16 {
				t.Errorf("L%d: iterations = %d", loopIdx, rt.Iterations)
			}
		}
	}
}

func TestOriginalProgramUntouched(t *testing.T) {
	prog := compile(t, sumSrc)
	before := prog.String()
	if _, err := instrument.Loop(prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Error("instrumentation mutated the input program")
	}
}

func TestInstrumentedContainsIntrinsics(t *testing.T) {
	prog := compile(t, sumSrc)
	inst, err := instrument.Loop(prog, "main", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.Fn.String()
	for _, want := range []string{
		"@" + instrument.RTLinearize, "@" + instrument.RTPermute,
		"@" + instrument.RTNext, "@" + instrument.RTGet, "@" + instrument.RTVerify,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("instrumented function missing %s:\n%s", want, s)
		}
	}
	if inst.Prog.Func(inst.Payload.Payload.Name) == nil {
		t.Error("payload function missing from instrumented program")
	}
}

func TestMultiExitDispatch(t *testing.T) {
	prog := compile(t, `
func f(a []int, n int, key int) int {
	var i int = 0;
	var seen int = 0;
	while (i < n) {
		seen += a[i];
		i++;
		if (seen > key) { return i; }
	}
	return 0 - 1;
}
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) { a[i] = 1; }
	print(f(a, 8, 3), f(a, 8, 100));
}`)
	// seen feeds the exit condition, so everything lands in the iterator:
	// not separable — but the multi-exit machinery is exercised via a loop
	// with a break on the iterator state.
	if _, err := instrument.Loop(prog, "f", 0); err == nil {
		t.Log("loop unexpectedly separable (fine if semantics preserved)")
	}

	prog2 := compile(t, `
func g(a []int, n int, limit int) int {
	var s int = 0;
	for (var i int = 0; i < n; i++) {
		if (i == limit) { break; }
		s += a[i];
	}
	return s;
}
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) { a[i] = i; }
	print(g(a, 8, 5), g(a, 8, 100));
}`)
	inst, err := instrument.Loop(prog2, "g", 0)
	if err != nil {
		t.Fatalf("break-on-iterator loop must instrument: %v", err)
	}
	var ref strings.Builder
	if _, err := interp.Run(prog2, interp.Config{Out: &ref}); err != nil {
		t.Fatal(err)
	}
	for _, sched := range []dcart.Schedule{dcart.Identity{}, dcart.Reverse{}} {
		if _, out := run(t, inst, sched); out != ref.String() {
			t.Errorf("%s: output %q != %q", sched.Name(), out, ref.String())
		}
	}
}

func TestErrors(t *testing.T) {
	prog := compile(t, sumSrc)
	if _, err := instrument.Loop(prog, "nosuch", 0); err == nil {
		t.Error("unknown function must fail")
	}
	if _, err := instrument.Loop(prog, "main", 99); err == nil {
		t.Error("out-of-range loop index must fail")
	}
}

func TestSnapshotDiffersUnderPermutation(t *testing.T) {
	// Order-dependent loop: permuted snapshots must differ from golden.
	prog := compile(t, `
func main() {
	var last int = 0;
	for (var i int = 0; i < 6; i++) { last = i; }
	print(last);
}`)
	inst, err := instrument.Loop(prog, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	golden, _ := run(t, inst, dcart.Identity{})
	rev, _ := run(t, inst, dcart.Reverse{})
	if golden.Snapshots[0] == rev.Snapshots[0] {
		t.Error("last-writer-wins loop must produce different snapshots")
	}
}
