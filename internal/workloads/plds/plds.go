// Package plds provides the fourteen pointer-linked-data-structure
// workloads of the paper's Table II. Each program is a MiniC rendition of
// the loop idiom the cited study parallelized by hand — linked-list maps,
// doubly-nested list traversals, threaded tree walks, worklist BFS, hash
// chains, sparse matrix products, cell-list n-body phases — built so that
// the key loop's iterator is a pointer chase (or its payload defeats the
// dependence tests in the idiom's characteristic way), DCA detects it as
// commutative, and all five baseline techniques fail.
//
// The paper used the original SPEC/PtrDist/Olden/Lonestar/SPARK00/SPLASH3
// sources; those are not redistributable here, so each program reproduces
// the loop-containing function the paper names, with synthetic data sized
// so that the key loop's share of sequential execution approximates the
// "Sequential Coverage" column of Table II.
package plds

import (
	"fmt"

	"dca/internal/ir"
	"dca/internal/irbuild"
)

// Program is one PLDS workload plus its Table II metadata.
type Program struct {
	Name     string
	Origin   string
	Function string // the loop-containing function from the paper
	// CoveragePct is Table II's sequential-coverage column.
	CoveragePct int
	// PotentialLoop/PotentialOverall reproduce the "Potential Speedup"
	// columns (loop-only vs whole program, "-" when unreported).
	PotentialLoop    string
	PotentialOverall string
	// Technique is the expert manual technique column.
	Technique string
	// Source is the MiniC program; KeyFn/KeyLoop identify the loop DCA
	// must detect.
	Source  string
	KeyFn   string
	KeyLoop int
	// Fig5 marks the programs in Figure 5, with the paper's speedup and
	// the machine-model bandwidth ceiling used to reproduce it.
	Fig5       bool
	Fig5Target float64
	Cap        float64
}

// Compile builds the program's IR.
func (p *Program) Compile() (*ir.Program, error) {
	prog, err := irbuild.Compile("plds-"+p.Name+".mc", p.Source)
	if err != nil {
		return nil, fmt.Errorf("plds %s: %w", p.Name, err)
	}
	return prog, nil
}

// Programs returns all fourteen Table II workloads (mcf in its default
// configuration, where the latent dependence is not exercised).
func Programs() []*Program {
	return []*Program{
		MCF(false),
		twolf(),
		ks(),
		otter(),
		em3d(),
		mst(),
		bh(),
		perimeter(),
		treeadd(),
		hash(),
		bfs(),
		ising(),
		spmatmat(),
		water(),
	}
}

// ByName returns the named program, or nil.
func ByName(name string) *Program {
	for _, p := range Programs() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// MCF models 429.mcf's refresh_potential: a tree walk over threaded nodes
// where each node's potential normally derives from loop-invariant data,
// but a rarely-taken path reads the parent's freshly-written potential — a
// cross-iteration dependence. The test/ref workloads never set the flag
// (withLatentDep=false), so DCA reports the loop commutative, exactly as
// the paper discusses; an adversarial input (withLatentDep=true) exercises
// the dependence and DCA detects the violation.
func MCF(withLatentDep bool) *Program {
	flagEvery := 0 // no node takes the dependent path
	if withLatentDep {
		flagEvery = 7
	}
	src := fmt.Sprintf(`
struct MNode { cost int; base int; flag int; potential int; pred *MNode; thread *MNode; }
func build(n int) *MNode {
	var head *MNode = nil;
	var prev *MNode = nil;
	for (var i int = 0; i < n; i++) {
		var nd *MNode = new MNode;
		nd->cost = (i * 13 + 5) %% 37;
		nd->base = (i * 7 + 11) %% 53;
		nd->flag = 0;
		if (%d > 0) {
			if (i %% %d == 3) { nd->flag = 1; }
		}
		nd->pred = prev;
		if (prev != nil) { prev->thread = nd; }
		if (head == nil) { head = nd; }
		prev = nd;
	}
	return head;
}
func checksum(head *MNode) int {
	var s int = 0;
	var p *MNode = head;
	while (p != nil) { s += p->potential; p = p->thread; }
	return s;
}
func refresh_potential(head *MNode) {
	var node *MNode = head;
	while (node != nil) {
		if (node->flag == 1) {
			node->potential = node->pred->potential + node->cost;
		} else {
			node->potential = node->base + node->cost;
		}
		node = node->thread;
	}
}
func serialwork(head *MNode) int {
	var acc int = 0;
	var p *MNode = head;
	while (p != nil) {
		var q *MNode = p->pred;
		var depth int = 0;
		while (q != nil && depth < 8) { acc += q->cost; q = q->pred; depth++; }
		p = p->thread;
	}
	return acc;
}
func main() {
	var head *MNode = build(120);
	for (var t int = 0; t < 5; t++) { refresh_potential(head); }
	var other int = serialwork(head);
	print(checksum(head), other);
}
`, flagEvery, max(flagEvery, 1))
	return &Program{
		Name: "429.mcf", Origin: "SPEC CPU2006", Function: "refresh_potential",
		CoveragePct: 30, PotentialLoop: "2.2", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		Source:    src, KeyFn: "refresh_potential", KeyLoop: 0,
	}
}

func twolf() *Program {
	return &Program{
		Name: "300.twolf", Origin: "SPEC CPU2000", Function: "new_dbox_a",
		CoveragePct: 30, PotentialLoop: "1.5", PotentialOverall: "-",
		Technique: "DSWP variant 2",
		KeyFn:     "new_dbox_a", KeyLoop: 0,
		Source: `
struct Term { x int; y int; cost int; next *Term; }
struct Net { terms *Term; next *Net; }
func build(nets int, terms int) *Net {
	var head *Net = nil;
	for (var i int = 0; i < nets; i++) {
		var nt *Net = new Net;
		var th *Term = nil;
		for (var j int = 0; j < terms; j++) {
			var t *Term = new Term;
			t->x = (i * 17 + j * 5) % 101;
			t->y = (i * 7 + j * 13) % 97;
			t->next = th;
			th = t;
		}
		nt->terms = th;
		nt->next = head;
		head = nt;
	}
	return head;
}
// new_dbox_a: doubly-nested linked-list traversal, accumulating the
// bounding-box cost of each net into the net's terminals.
func new_dbox_a(nets *Net) {
	var n *Net = nets;
	while (n != nil) {
		var lo int = 1000000;
		var hi int = 0;
		var t *Term = n->terms;
		while (t != nil) {
			if (t->x < lo) { lo = t->x; }
			if (t->x > hi) { hi = t->x; }
			t = t->next;
		}
		t = n->terms;
		while (t != nil) { t->cost = hi - lo + t->y; t = t->next; }
		n = n->next;
	}
}
func checksum(nets *Net) int {
	var s int = 0;
	var n *Net = nets;
	while (n != nil) {
		var t *Term = n->terms;
		while (t != nil) { s += t->cost; t = t->next; }
		n = n->next;
	}
	return s;
}
func serialwork(nets *Net) int {
	var acc int = 0;
	for (var r int = 0; r < 5; r++) { acc += checksum(nets); }
	return acc;
}
func main() {
	var nets *Net = build(24, 10);
	new_dbox_a(nets);
	new_dbox_a(nets);
	print(checksum(nets), serialwork(nets));
}
`,
	}
}

func ks() *Program {
	return &Program{
		Name: "ks", Origin: "PtrDist", Function: "FindMaxGpAndSwap",
		CoveragePct: 99, PotentialLoop: "1.5", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		KeyFn:     "FindMaxGpAndSwap", KeyLoop: 0,
		Fig5: true, Fig5Target: 1.5, Cap: 1.6,
		Source: `
struct KNode { id int; gain int; partner int; next *KNode; }
func build(n int) *KNode {
	var head *KNode = nil;
	for (var i int = 0; i < n; i++) {
		var nd *KNode = new KNode;
		nd->id = i;
		nd->gain = (i * 37 + 11) % 1009;
		nd->next = head;
		head = nd;
	}
	return head;
}
// FindMaxGpAndSwap: scan every node pair's gain product and record the
// best swap candidate per node (gains are distinct, so the extremum is
// order-insensitive).
func FindMaxGpAndSwap(list *KNode) {
	var a *KNode = list;
	while (a != nil) {
		var best int = -1;
		var bestid int = -1;
		var b *KNode = a->next;
		while (b != nil) {
			var gp int = a->gain + b->gain - 2 * ((a->gain * b->gain) % 7);
			if (gp > best) { best = gp; bestid = b->id; }
			b = b->next;
		}
		a->partner = bestid;
		a = a->next;
	}
}
func checksum(list *KNode) int {
	var s int = 0;
	var p *KNode = list;
	while (p != nil) { s += p->partner + p->gain; p = p->next; }
	return s;
}
func main() {
	var list *KNode = build(56);
	FindMaxGpAndSwap(list);
	print(checksum(list));
}
`,
	}
}

func otter() *Program {
	return &Program{
		Name: "otter", Origin: "FOSS", Function: "find_lightest_geo_child",
		CoveragePct: 15, PotentialLoop: "2.5", PotentialOverall: "-",
		Technique: "DSWP variant 2",
		KeyFn:     "find_lightest_geo_child", KeyLoop: 0,
		Source: `
struct Clause { weight int; mark int; kids *Clause; next *Clause; }
func build(parents int, kids int) *Clause {
	var head *Clause = nil;
	for (var i int = 0; i < parents; i++) {
		var c *Clause = new Clause;
		c->weight = (i * 29 + 3) % 211;
		var kh *Clause = nil;
		for (var j int = 0; j < kids; j++) {
			var k *Clause = new Clause;
			k->weight = (i * 31 + j * 17 + 7) % 509;
			k->next = kh;
			kh = k;
		}
		c->kids = kh;
		c->next = head;
		head = c;
	}
	return head;
}
// find_lightest_geo_child: for every parent clause, mark the lightest
// child (weights are distinct per child list).
func find_lightest_geo_child(cs *Clause) {
	var c *Clause = cs;
	while (c != nil) {
		var bestw int = 1000000;
		var k *Clause = c->kids;
		while (k != nil) {
			if (k->weight < bestw) { bestw = k->weight; }
			k = k->next;
		}
		c->mark = bestw;
		c = c->next;
	}
}
func checksum(cs *Clause) int {
	var s int = 0;
	var c *Clause = cs;
	while (c != nil) { s += c->mark; c = c->next; }
	return s;
}
func serialwork(cs *Clause) int {
	var acc int = 0;
	for (var r int = 0; r < 34; r++) { acc += checksum(cs); }
	return acc;
}
func main() {
	var cs *Clause = build(20, 6);
	find_lightest_geo_child(cs);
	print(checksum(cs), serialwork(cs));
}
`,
	}
}

func em3d() *Program {
	return &Program{
		Name: "em3d", Origin: "Olden", Function: "compute_nodes",
		CoveragePct: 100, PotentialLoop: "2", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		KeyFn:     "compute_nodes", KeyLoop: 0,
		Source: `
struct ENode { val int; newval int; deg int; from []*ENode; next *ENode; }
func build(n int, deg int) *ENode {
	var nodes []*ENode = new [n]*ENode;
	var head *ENode = nil;
	for (var i int = 0; i < n; i++) {
		var nd *ENode = new ENode;
		nd->val = (i * 23 + 7) % 127;
		nd->deg = deg;
		nd->from = new [deg]*ENode;
		nd->next = head;
		head = nd;
		nodes[i] = nd;
	}
	for (var i int = 0; i < n; i++) {
		for (var j int = 0; j < deg; j++) {
			nodes[i]->from[j] = nodes[(i * 7 + j * 13 + 1) % n];
		}
	}
	return head;
}
// compute_nodes: each node gathers its in-neighbors' values (two-phase
// update: reads val, writes newval).
func compute_nodes(head *ENode) {
	var n *ENode = head;
	while (n != nil) {
		var v int = 0;
		for (var j int = 0; j < n->deg; j++) {
			v += n->from[j]->val * (j + 1);
		}
		n->newval = v;
		n = n->next;
	}
}
func checksum(head *ENode) int {
	var s int = 0;
	var n *ENode = head;
	while (n != nil) { s += n->newval; n = n->next; }
	return s;
}
func main() {
	var head *ENode = build(64, 6);
	for (var t int = 0; t < 14; t++) { compute_nodes(head); }
	print(checksum(head));
}
`,
	}
}

func mst() *Program {
	return &Program{
		Name: "mst", Origin: "Olden", Function: "BlueRule",
		CoveragePct: 100, PotentialLoop: "1.5", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		KeyFn:     "BlueRule", KeyLoop: 0,
		Source: `
struct Vert { id int; mindist int; inTree int; edges *Edge; next *Vert; }
struct Edge { weight int; to int; next *Edge; }
func build(n int, deg int) *Vert {
	var head *Vert = nil;
	for (var i int = 0; i < n; i++) {
		var v *Vert = new Vert;
		v->id = i;
		v->inTree = 0;
		if (i == 0) { v->inTree = 1; }
		var eh *Edge = nil;
		for (var j int = 0; j < deg; j++) {
			var e *Edge = new Edge;
			e->weight = (i * 41 + j * 23 + 5) % 997;
			e->to = (i + j + 1) % n;
			e->next = eh;
			eh = e;
		}
		v->edges = eh;
		v->next = head;
		head = v;
	}
	return head;
}
// BlueRule: for every vertex outside the tree, find its cheapest edge into
// the tree fringe (distinct weights keep the extremum order-insensitive).
func BlueRule(vs *Vert) {
	var v *Vert = vs;
	while (v != nil) {
		if (v->inTree == 0) {
			var best int = 1000000;
			var e *Edge = v->edges;
			while (e != nil) {
				if (e->to % 3 == 0 && e->weight < best) { best = e->weight; }
				e = e->next;
			}
			v->mindist = best;
		}
		v = v->next;
	}
}
func checksum(vs *Vert) int {
	var s int = 0;
	var v *Vert = vs;
	while (v != nil) { s += v->mindist % 1000; v = v->next; }
	return s;
}
func main() {
	var vs *Vert = build(48, 8);
	for (var t int = 0; t < 16; t++) { BlueRule(vs); }
	print(checksum(vs));
}
`,
	}
}

func bh() *Program {
	return &Program{
		Name: "bh", Origin: "Olden", Function: "walksub",
		CoveragePct: 100, PotentialLoop: "2.75", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		KeyFn:     "walksub", KeyLoop: 0,
		Source: `
struct Body { x int; y int; fx int; fy int; next *Body; }
struct Cell { cx int; cy int; mass int; next *Cell; }
func buildBodies(n int) *Body {
	var head *Body = nil;
	for (var i int = 0; i < n; i++) {
		var b *Body = new Body;
		b->x = (i * 37 + 11) % 211;
		b->y = (i * 53 + 29) % 223;
		b->next = head;
		head = b;
	}
	return head;
}
func buildCells(n int) *Cell {
	var head *Cell = nil;
	for (var i int = 0; i < n; i++) {
		var c *Cell = new Cell;
		c->cx = (i * 19 + 3) % 211;
		c->cy = (i * 43 + 17) % 223;
		c->mass = (i * 7 + 1) % 29 + 1;
		c->next = head;
		head = c;
	}
	return head;
}
// walksub: each body walks the interaction list and accumulates forces
// into its own fields.
func walksub(bodies *Body, cells *Cell) {
	var b *Body = bodies;
	while (b != nil) {
		var fx int = 0;
		var fy int = 0;
		var c *Cell = cells;
		while (c != nil) {
			var dx int = c->cx - b->x;
			var dy int = c->cy - b->y;
			var d2 int = dx * dx + dy * dy + 1;
			fx += c->mass * dx / d2;
			fy += c->mass * dy / d2;
			c = c->next;
		}
		b->fx = fx;
		b->fy = fy;
		b = b->next;
	}
}
func checksum(bodies *Body) int {
	var s int = 0;
	var b *Body = bodies;
	while (b != nil) { s += b->fx + 3 * b->fy; b = b->next; }
	return s;
}
func main() {
	var bodies *Body = buildBodies(40);
	var cells *Cell = buildCells(24);
	walksub(bodies, cells);
	print(checksum(bodies));
}
`,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
