package pointer_test

import (
	"testing"

	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/pointer"
)

func analyze(t *testing.T, src string) (*ir.Program, *pointer.Analysis) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, pointer.Analyze(prog)
}

func local(prog *ir.Program, fn, name string) *ir.Local {
	for _, l := range prog.Func(fn).Locals {
		if l.Name == name {
			return l
		}
	}
	return nil
}

func TestDistinctAllocationSites(t *testing.T) {
	prog, pa := analyze(t, `
func main() {
	var a []int = new [4]int;
	var b []int = new [4]int;
	a[0] = 1;
	b[0] = 2;
	print(a[0] + b[0]);
}`)
	pa1 := pa.PointsTo(local(prog, "main", "a"))
	pa2 := pa.PointsTo(local(prog, "main", "b"))
	if len(pa1) != 1 || len(pa2) != 1 {
		t.Fatalf("points-to sizes: %d, %d", len(pa1), len(pa2))
	}
	if pa1[0] == pa2[0] {
		t.Error("distinct allocations must have distinct sites")
	}
}

func TestFlowThroughMovesAndCalls(t *testing.T) {
	prog, pa := analyze(t, `
func pass(x []int) []int { return x; }
func main() {
	var a []int = new [4]int;
	var b []int = pass(a);
	b[0] = 1;
	print(a[0]);
}`)
	sa := pa.PointsTo(local(prog, "main", "a"))
	sb := pa.PointsTo(local(prog, "main", "b"))
	if len(sb) == 0 || len(sa) == 0 || sa[0] != sb[0] {
		t.Errorf("call-return flow broken: a=%v b=%v", sa, sb)
	}
}

func TestFieldSensitivity(t *testing.T) {
	prog, pa := analyze(t, `
struct Pair { fst []int; snd []int; }
func main() {
	var p *Pair = new Pair;
	p->fst = new [2]int;
	p->snd = new [2]int;
	var x []int = p->fst;
	var y []int = p->snd;
	x[0] = 1;
	y[0] = 2;
	print(x[0] + y[0]);
}`)
	sx := pa.PointsTo(local(prog, "main", "x"))
	sy := pa.PointsTo(local(prog, "main", "y"))
	if len(sx) != 1 || len(sy) != 1 {
		t.Fatalf("pts sizes: %d %d", len(sx), len(sy))
	}
	if sx[0] == sy[0] {
		t.Error("field-sensitive analysis must keep fst and snd apart")
	}
}

func TestHeapChainTraversal(t *testing.T) {
	prog, pa := analyze(t, `
struct N { v int; next *N; }
func main() {
	var head *N = nil;
	for (var i int = 0; i < 3; i++) {
		var n *N = new N;
		n->next = head;
		head = n;
	}
	var p *N = head;
	while (p != nil) { p = p->next; }
	print(0);
}`)
	sp := pa.PointsTo(local(prog, "main", "p"))
	sh := pa.PointsTo(local(prog, "main", "head"))
	if len(sp) == 0 || len(sh) == 0 {
		t.Fatal("empty points-to for chain")
	}
	// p reaches whatever head reaches (one site: the single new N).
	if sp[0] != sh[0] {
		t.Errorf("p=%v head=%v", sp, sh)
	}
}

func TestModRefSummaries(t *testing.T) {
	prog, pa := analyze(t, `
func writer(a []int, i int) { a[i] = i; }
func reader(a []int, i int) int { return a[i]; }
func outer(a []int) { writer(a, 0); }
func main() {
	var a []int = new [4]int;
	outer(a);
	print(reader(a, 0));
}`)
	w := pa.Summaries[prog.Func("writer")]
	r := pa.Summaries[prog.Func("reader")]
	o := pa.Summaries[prog.Func("outer")]
	if len(w.Writes) == 0 || len(w.Reads) != 0 {
		t.Errorf("writer summary: %+v", w)
	}
	if len(r.Reads) == 0 || len(r.Writes) != 0 {
		t.Errorf("reader summary: %+v", r)
	}
	if len(o.Writes) == 0 {
		t.Error("outer must inherit writer's effects transitively")
	}
	if !o.Writes.Intersects(r.Reads) {
		t.Error("outer writes must intersect reader reads (same array)")
	}
}

func TestAccessRegions(t *testing.T) {
	prog, pa := analyze(t, `
func main() {
	var a []int = new [4]int;
	a[1] = 5;
	print(a[1]);
}`)
	var regions int
	for _, b := range prog.Func("main").Blocks {
		for _, in := range b.Instrs {
			regions += len(pa.AccessRegions(in))
		}
	}
	if regions < 2 {
		t.Errorf("expected regions for the store and load, got %d", regions)
	}
}

func TestRegionSetOps(t *testing.T) {
	_, pa := analyze(t, `func main() { var a []int = new [2]int; a[0] = 1; print(a[0]); }`)
	if len(pa.Sites) != 1 {
		t.Fatalf("sites = %d", len(pa.Sites))
	}
	r1 := pointer.Region{Site: pa.Sites[0], Field: pointer.ArrayField}
	r2 := pointer.Region{Site: pa.Sites[0], Field: 0}
	s := pointer.RegionSet{}
	if !s.Add(r1) || s.Add(r1) {
		t.Error("Add growth reporting")
	}
	other := pointer.RegionSet{r2: true}
	if s.Intersects(other) {
		t.Error("distinct fields must not intersect")
	}
	other.Add(r1)
	if !s.Intersects(other) {
		t.Error("shared region must intersect")
	}
	if got := s.Sorted(); len(got) != 1 || got[0] != r1 {
		t.Errorf("Sorted = %v", got)
	}
}
