package dataflow_test

import (
	"testing"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

func analyze(t *testing.T, src, fn string) (*ir.Func, *cfg.Graph, []*cfg.Loop, *dataflow.Liveness) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.Func(fn)
	g, loops := cfg.LoopsOf(f)
	return f, g, loops, dataflow.ComputeLiveness(g)
}

func local(fn *ir.Func, name string) *ir.Local {
	for _, l := range fn.Locals {
		if l.Name == name {
			return l
		}
	}
	return nil
}

func TestLoopEffects(t *testing.T) {
	fn, _, loops, lv := analyze(t, `
func main() {
	var a []int = new [8]int;
	var s int = 0;
	var unused int = 42;
	for (var i int = 0; i < 8; i++) {
		s += a[i];
	}
	print(s, a[0]);
}`, "main")
	e := lv.AnalyzeLoop(loops[0])
	s, a, u, i := local(fn, "s"), local(fn, "a"), local(fn, "unused"), local(fn, "i")
	if !e.LiveOut[s] {
		t.Error("s must be live-out (defined in loop, used after)")
	}
	if !e.LiveThrough[a] {
		t.Error("a must be live-through (untouched local, used after)")
	}
	if e.LiveOut[u] || e.LiveThrough[u] || e.LiveAfter[u] {
		t.Error("unused must not be live anywhere after the loop")
	}
	if !e.LiveIn[s] || !e.LiveIn[a] || !e.LiveIn[i] {
		t.Errorf("live-in must include s, a, i")
	}
	if !e.LiveAfter[s] || !e.LiveAfter[a] {
		t.Error("live-after must include s and a")
	}
	if !e.DefsInside[s] || !e.DefsInside[i] {
		t.Error("defs-inside must include s and i")
	}
}

func TestDeadAfterLoop(t *testing.T) {
	fn, _, loops, lv := analyze(t, `
func main() {
	var t int = 0;
	for (var i int = 0; i < 4; i++) { t += i; }
	print(1);
}`, "main")
	e := lv.AnalyzeLoop(loops[0])
	tt := local(fn, "t")
	if e.LiveAfter[tt] {
		t.Error("t is never used after the loop: not live-after")
	}
}

func TestIterationCarriedLiveness(t *testing.T) {
	fn, _, loops, lv := analyze(t, `
struct N { v int; next *N; }
func main() {
	var p *N = nil;
	var s int = 0;
	while (p != nil) { s += p->v; p = p->next; }
	print(s);
}`, "main")
	p := local(fn, "p")
	if !lv.LiveIn[loops[0].Header][p] {
		t.Error("pointer iterator must be live into the loop header")
	}
}

func TestBranchLiveness(t *testing.T) {
	fn, g, _, lv := analyze(t, `
func main() {
	var x int = 1;
	var y int = 2;
	if (x > 0) { print(x); } else { print(y); }
}`, "main")
	entry := fn.Entry()
	x, y := local(fn, "x"), local(fn, "y")
	if !lv.LiveOut[entry][x] || !lv.LiveOut[entry][y] {
		t.Errorf("x and y live out of entry: %v", lv.LiveOut[entry])
	}
	_ = g
}

func TestLocalSetOps(t *testing.T) {
	fn, _, _, _ := analyze(t, `func main() { var a int = 1; var b int = 2; print(a+b); }`, "main")
	a, b := local(fn, "a"), local(fn, "b")
	s := dataflow.NewLocalSet(a)
	if !s.Add(b) || s.Add(b) {
		t.Error("Add growth reporting broken")
	}
	c := s.Clone()
	c[a] = false
	delete(c, a)
	if !s[a] {
		t.Error("Clone must be independent")
	}
	other := dataflow.NewLocalSet(a, b)
	if s.AddAll(other) {
		t.Error("AddAll of subset must not grow")
	}
	sorted := s.Sorted()
	if len(sorted) != 2 || sorted[0].Index > sorted[1].Index {
		t.Errorf("Sorted = %v", sorted)
	}
}
