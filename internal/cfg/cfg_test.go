package cfg_test

import (
	"testing"

	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/irbuild"
)

func loopsOf(t *testing.T, src, fn string) (*cfg.Graph, []*cfg.Loop) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.Func(fn)
	if f == nil {
		t.Fatalf("no func %q", fn)
	}
	return cfg.LoopsOf(f)
}

func TestStraightLineNoLoops(t *testing.T) {
	_, loops := loopsOf(t, `func main() { var x int = 1; print(x); }`, "main")
	if len(loops) != 0 {
		t.Errorf("loops = %d, want 0", len(loops))
	}
}

func TestSingleLoop(t *testing.T) {
	g, loops := loopsOf(t, `func main() { for (var i int = 0; i < 4; i++) { print(i); } }`, "main")
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("depth=%d parent=%v", l.Depth, l.Parent)
	}
	if len(l.Exits) != 1 || len(l.ExitSrcs) != 1 {
		t.Errorf("exits=%v srcs=%v", l.Exits, l.ExitSrcs)
	}
	if !g.Dominates(l.Header, l.Latches[0]) {
		t.Error("header must dominate latch")
	}
}

func TestNestedLoops(t *testing.T) {
	_, loops := loopsOf(t, `
func main() {
	for (var i int = 0; i < 3; i++) {
		for (var j int = 0; j < 3; j++) {
			for (var k int = 0; k < 3; k++) { print(k); }
		}
	}
}`, "main")
	if len(loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(loops))
	}
	depths := map[int]int{}
	for _, l := range loops {
		depths[l.Depth]++
	}
	if depths[1] != 1 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("depths = %v", depths)
	}
	// Child chains.
	for _, l := range loops {
		if l.Depth == 3 && (l.Parent == nil || l.Parent.Depth != 2) {
			t.Errorf("innermost parent = %v", l.Parent)
		}
	}
}

func TestSiblingLoops(t *testing.T) {
	_, loops := loopsOf(t, `
func main() {
	for (var i int = 0; i < 3; i++) { print(i); }
	for (var j int = 0; j < 3; j++) { print(j); }
}`, "main")
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	for _, l := range loops {
		if l.Depth != 1 || len(l.Children) != 0 {
			t.Errorf("sibling loop %s: depth=%d children=%d", l, l.Depth, len(l.Children))
		}
	}
	// Stable indexing in source order.
	if loops[0].Index != 0 || loops[1].Index != 1 {
		t.Errorf("indices: %d, %d", loops[0].Index, loops[1].Index)
	}
}

func TestMultiExitLoop(t *testing.T) {
	_, loops := loopsOf(t, `
func f(a []int, n int) int {
	for (var i int = 0; i < n; i++) {
		if (a[i] == 7) { return i; }
	}
	return -1;
}
func main() { var a []int = new [4]int; print(f(a, 4)); }
`, "f")
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if len(loops[0].ExitSrcs) != 2 {
		t.Errorf("exit sources = %d, want 2 (header + return branch)", len(loops[0].ExitSrcs))
	}
}

func TestWhileLoopShape(t *testing.T) {
	g, loops := loopsOf(t, `
struct N { next *N; }
func main() {
	var p *N = nil;
	while (p != nil) { p = p->next; }
	print(0);
}`, "main")
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if !g.Reachable(l.Header) {
		t.Error("header unreachable")
	}
	if l.Header.Pos.Line == 0 {
		t.Error("loop header should carry a source position")
	}
}

func TestDominators(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var x int = 0;
	if (x == 0) { x = 1; } else { x = 2; }
	print(x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	g := cfg.New(fn)
	entry := fn.Entry()
	for _, b := range fn.Blocks {
		if !g.Reachable(b) {
			continue
		}
		if !g.Dominates(entry, b) {
			t.Errorf("entry must dominate %s", b.Name)
		}
		if g.Dominates(b, entry) && b != entry {
			t.Errorf("%s must not dominate entry", b.Name)
		}
	}
	// The join block is dominated by the branch block but not by either arm.
	var thenB, join *ir.Block
	for _, b := range fn.Blocks {
		switch {
		case b.Name[:4] == "then":
			thenB = b
		case len(b.Name) >= 5 && b.Name[:5] == "endif":
			join = b
		}
	}
	if thenB == nil || join == nil {
		t.Fatal("missing blocks")
	}
	if g.Dominates(thenB, join) {
		t.Error("then-arm must not dominate the join")
	}
}

func TestPostDominators(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var x int = 0;
	if (x == 0) { x = 1; } else { x = 2; }
	print(x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	g := cfg.New(fn)
	pd := cfg.ComputePostDom(g)
	// Both arms are control dependent on the entry branch.
	entry := fn.Entry()
	found := 0
	for _, b := range fn.Blocks {
		for _, a := range pd.ControllingBranches(b) {
			if a == entry {
				found++
			}
		}
	}
	if found < 2 {
		t.Errorf("expected both arms control-dependent on entry, found %d", found)
	}
}

func TestLoopBodyControlDependence(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	for (var i int = 0; i < 4; i++) { print(i); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	g := cfg.New(fn)
	pd := cfg.ComputePostDom(g)
	_, loops := cfg.LoopsOf(fn)
	l := loops[0]
	// The loop body is control dependent on the header's branch.
	dep := false
	for b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, a := range pd.ControllingBranches(b) {
			if a == l.Header {
				dep = true
			}
		}
	}
	if !dep {
		t.Error("loop body should be control dependent on the header")
	}
}

func TestLoopID(t *testing.T) {
	_, loops := loopsOf(t, `func main() { var x int = 0; while (true) { if (x > 3) { break; } x++; } }`, "main")
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if id := loops[0].ID(); id == "" {
		t.Error("empty loop id")
	}
}
