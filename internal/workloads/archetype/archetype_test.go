package archetype_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/depprof"
	"dca/internal/discopop"
	"dca/internal/icc"
	"dca/internal/idioms"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/polly"
	"dca/internal/workloads/archetype"
)

// Signature is a detection vector over the six analyzers.
type Signature struct {
	DepProf, DiscoPoP, Idioms, Polly, ICC, DCA bool
}

// want maps every archetype to its documented signature; the test asserts
// that the real detectors reproduce it. If this table drifts, the NPB mix
// algebra in workloads/npb no longer reproduces the paper's tables.
var want = map[archetype.Kind]Signature{
	archetype.DoallConst:       {true, true, false, true, true, true},
	archetype.DoallCall:        {true, true, false, false, true, true},
	archetype.DoallCallRW:      {true, false, false, false, false, true},
	archetype.DoallDown:        {true, true, false, true, false, true},
	archetype.SumReduction:     {true, true, true, false, true, true},
	archetype.MinMaxReduction:  {true, false, true, false, true, true},
	archetype.Histogram:        {true, true, true, false, false, true},
	archetype.ScatterPerm:      {true, true, false, false, false, true},
	archetype.Recurrence:       {false, false, false, false, false, false},
	archetype.IOLoop:           {false, false, false, false, false, false},
	archetype.UnexercisedPolly: {false, false, false, true, true, false},
	archetype.UnexercisedICC:   {false, false, false, false, true, false},
	archetype.FloatSum:         {true, true, true, false, true, false},
}

// measure runs every detector over a program and returns the signature of
// the given loop.
func measure(t *testing.T, prog *ir.Program, fn string, idx int) Signature {
	t.Helper()
	var sig Signature
	dp, err := depprof.Analyze(prog, depprof.DefaultPolicy(), 0)
	if err != nil {
		t.Fatalf("depprof: %v", err)
	}
	if v := dp.Verdict(fn, idx); v != nil {
		sig.DepProf = v.Parallel
	}
	dpp, err := discopop.Analyze(prog, 0)
	if err != nil {
		t.Fatalf("discopop: %v", err)
	}
	if v := dpp.Verdict(fn, idx); v != nil {
		sig.DiscoPoP = v.Parallel
	}
	if v := idioms.Analyze(prog).Verdict(fn, idx); v != nil {
		sig.Idioms = v.Parallel
	}
	if v := polly.Analyze(prog).Verdict(fn, idx); v != nil {
		sig.Polly = v.Parallel
	}
	if v := icc.Analyze(prog).Verdict(fn, idx); v != nil {
		sig.ICC = v.Parallel
	}
	res, err := core.AnalyzeLoop(prog, fn, idx, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}},
	})
	if err != nil {
		t.Fatalf("dca: %v", err)
	}
	sig.DCA = res.Verdict.IsParallelizable()
	return sig
}

// TestSignatures is the calibration gate: every archetype must exhibit its
// documented detection signature under the real analyzers.
func TestSignatures(t *testing.T) {
	for kind, expect := range want {
		kind, expect := kind, expect
		t.Run(kind.String(), func(t *testing.T) {
			src := archetype.Source([]archetype.Group{
				{archetype.Instance{Kind: kind, Seq: 0, Trip: 40}},
			})
			prog, err := irbuild.Compile(kind.String()+".mc", src)
			if err != nil {
				t.Fatalf("compile: %v\nsource:\n%s", err, src)
			}
			got := measure(t, prog, "work0", 0)
			if got != expect {
				t.Errorf("signature = %+v, want %+v\nsource:\n%s", got, expect, src)
			}
		})
	}
}

// TestPLDSMapSignature checks the map loop of the PLDS archetype (its build
// and sum loops are separate).
func TestPLDSMapSignature(t *testing.T) {
	src := archetype.Source([]archetype.Group{
		{archetype.Instance{Kind: archetype.PLDSMap, Seq: 0, Trip: 24}},
	})
	prog, err := irbuild.Compile("plds.mc", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	// Loop 0 builds the list (serial), loop 1 is the map (DCA-only), loop 2
	// sums (DCA-only; the pointer chase defeats the dependence tools).
	got := measure(t, prog, "work0", 1)
	expect := Signature{DCA: true}
	if got != expect {
		t.Errorf("map loop signature = %+v, want %+v", got, expect)
	}
	if sum := measure(t, prog, "work0", 2); !sum.DCA || sum.DepProf {
		t.Errorf("sum loop signature = %+v, want DCA-only", sum)
	}
}

// TestTaskPairSection: pairing two independent doall-call loops in one
// function yields exactly one extra DiscoPoP region.
func TestTaskPairSection(t *testing.T) {
	src := archetype.Source([]archetype.Group{
		{
			archetype.Instance{Kind: archetype.DoallCall, Seq: 0, Trip: 32},
			archetype.Instance{Kind: archetype.DoallCall, Seq: 1, Trip: 32},
		},
	})
	prog, err := irbuild.Compile("pair.mc", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	rep, err := discopop.Analyze(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TaskSections) != 1 {
		t.Errorf("task sections = %d, want 1\n%s", len(rep.TaskSections), rep)
	}
	if rep.ParallelRegions() != rep.ParallelLoops()+1 {
		t.Errorf("regions %d != loops %d + 1", rep.ParallelRegions(), rep.ParallelLoops())
	}
}

// TestProgramRuns: an assembled multi-archetype program compiles, runs and
// produces deterministic output.
func TestProgramRuns(t *testing.T) {
	var groups []archetype.Group
	seq := 0
	for _, k := range archetype.Kinds() {
		groups = append(groups, archetype.Group{archetype.Instance{Kind: k, Seq: seq, Trip: 24}})
		seq++
	}
	src := archetype.Source(groups)
	prog, err := irbuild.Compile("all.mc", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	if _, err := depprof.Trace(prog, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRandomMixesNoFalsePositives is a randomized property check of Table
// IV's headline claim: across arbitrary archetype mixes, DCA never reports
// a ground-truth-serial loop as commutative and never misses an exercised
// ground-truth-parallel one.
func TestRandomMixesNoFalsePositives(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	kinds := archetype.Kinds()
	for trial := 0; trial < 4; trial++ {
		var groups []archetype.Group
		var truths []archetype.Truth
		seq := 0
		for len(groups) < 10 {
			k := kinds[rnd.Intn(len(kinds))]
			if k == archetype.PLDSMap {
				continue // 3 loops/instance: tracked separately below
			}
			trip := 16 + rnd.Intn(48)
			groups = append(groups, archetype.Group{archetype.Instance{Kind: k, Seq: seq, Trip: trip}})
			truths = append(truths, k.Truth())
			seq++
		}
		src := archetype.Source(groups)
		prog, err := irbuild.Compile("rand.mc", src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		rep, err := core.Analyze(prog, core.Options{
			Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: int64(trial + 1)}},
		})
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		for gi, truth := range truths {
			res := rep.Result(fmt.Sprintf("work%d", gi), 0)
			if res == nil {
				t.Fatalf("trial %d: missing verdict for group %d", trial, gi)
			}
			detected := res.Verdict.IsParallelizable()
			switch truth {
			case archetype.TruthSerial, archetype.TruthIO:
				if detected {
					t.Errorf("trial %d: FALSE POSITIVE on %s group %d (%s)", trial, groups[gi][0].Kind, gi, res.Verdict)
				}
			case archetype.TruthParallel:
				if !detected {
					t.Errorf("trial %d: FALSE NEGATIVE on %s group %d (%s: %s)", trial, groups[gi][0].Kind, gi, res.Verdict, res.Reason)
				}
			case archetype.TruthNotExercised:
				if res.Verdict != core.NotExecuted {
					t.Errorf("trial %d: unexercised %s group %d reported %s", trial, groups[gi][0].Kind, gi, res.Verdict)
				}
			}
		}
	}
}
