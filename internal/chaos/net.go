package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// NetFault selects what an injected network fault does.
type NetFault int

const (
	// NetRefuse: the request fails immediately, as if the node's port were
	// closed — the crashed-worker case.
	NetRefuse NetFault = iota
	// NetLatency: the request is delayed by a random spike before being
	// forwarded — the congested-network case hedging exists for.
	NetLatency
	// NetCut: the response body is severed after a random prefix — the
	// mid-transfer disconnect case.
	NetCut
	// Net5xx: the request never reaches the node; a synthesized 5xx comes
	// back, sometimes as a short burst, sometimes a 503 shed carrying
	// Retry-After — the overloaded-worker case.
	Net5xx
	// NetSlowBody: the response body trickles out a small chunk at a time —
	// the slow-partial-response case that stalls naive readers.
	NetSlowBody
)

var netFaultNames = [...]string{"refuse", "latency", "cut", "5xx", "slow-body"}

func (k NetFault) String() string { return netFaultNames[k] }

// AllNetFaults lists every injectable network fault kind.
var AllNetFaults = []NetFault{NetRefuse, NetLatency, NetCut, Net5xx, NetSlowBody}

// NetChaos is a fault-injecting http.RoundTripper: every eligible request
// suffers one of the configured fault kinds with probability prob, driven
// by a seeded generator — deterministic for a given seed and request
// sequence (concurrent requests make the sequence schedule-dependent,
// like Monkey). It is the network counterpart of Monkey: wrap a
// coordinator's HTTP client with it and the dispatch path experiences
// connection refusals, latency spikes, mid-body disconnects, 5xx bursts,
// and slow partial responses without a single real network misbehaving.
type NetChaos struct {
	// Inner performs the real round trips; nil means
	// http.DefaultTransport.
	Inner http.RoundTripper
	// Only scopes injection to matching requests (e.g. only /analyze, so
	// health probes stay clean); nil makes every request eligible.
	Only func(*http.Request) bool
	// Latency bounds an injected latency spike (default 80ms; spikes are
	// uniform in [Latency/2, Latency)).
	Latency time.Duration

	mu     sync.Mutex
	rng    *rand.Rand
	prob   float64
	kinds  []NetFault
	burst  int // remaining synthesized sheds in the current 5xx burst
	faults int64
	counts [len(netFaultNames)]int64
}

// NewNetChaos builds a seeded fault-injecting transport over inner. kinds
// selects the injectable faults; none means all of them.
func NewNetChaos(inner http.RoundTripper, seed int64, prob float64, kinds ...NetFault) *NetChaos {
	if len(kinds) == 0 {
		kinds = AllNetFaults
	}
	return &NetChaos{
		Inner:   inner,
		Latency: 80 * time.Millisecond,
		rng:     rand.New(rand.NewSource(seed)),
		prob:    prob,
		kinds:   append([]NetFault(nil), kinds...),
	}
}

// Faults returns how many requests were failed or degraded by injection.
func (c *NetChaos) Faults() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// FaultCounts returns per-kind injection counts, indexed by NetFault.
func (c *NetChaos) FaultCounts() [len(netFaultNames)]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// netPlan is one request's fate, with every random parameter drawn under
// the lock so concurrent requests cannot interleave rng draws mid-fault.
type netPlan struct {
	fail       bool
	kind       NetFault
	latency    time.Duration
	cutAfter   int
	status     int
	retryAfter int
	chunk      int
	chunkDelay time.Duration
}

func (c *NetChaos) roll() netPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := netPlan{}
	if c.burst > 0 {
		// Mid-burst: the node is still overloaded, shed regardless of prob.
		c.burst--
		p.fail = true
		p.kind = Net5xx
	} else {
		if c.rng.Float64() >= c.prob {
			return p
		}
		p.fail = true
		p.kind = c.kinds[c.rng.Intn(len(c.kinds))]
	}
	c.faults++
	c.counts[p.kind]++
	switch p.kind {
	case NetLatency:
		max := c.Latency
		if max <= 0 {
			max = 80 * time.Millisecond
		}
		p.latency = max/2 + time.Duration(c.rng.Int63n(int64(max/2)))
	case NetCut:
		p.cutAfter = 256 + c.rng.Intn(1024)
	case Net5xx:
		if c.burst == 0 {
			c.burst = c.rng.Intn(3) // up to two follow-up sheds
		}
		if c.rng.Intn(2) == 0 {
			p.status = http.StatusServiceUnavailable
			p.retryAfter = 1
		} else {
			p.status = http.StatusBadGateway
		}
	case NetSlowBody:
		p.chunk = 256 + c.rng.Intn(256)
		p.chunkDelay = time.Duration(2+c.rng.Intn(8)) * time.Millisecond
	}
	return p
}

func (c *NetChaos) inner() http.RoundTripper {
	if c.Inner != nil {
		return c.Inner
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (c *NetChaos) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.Only != nil && !c.Only(req) {
		return c.inner().RoundTrip(req)
	}
	p := c.roll()
	if !p.fail {
		return c.inner().RoundTrip(req)
	}
	switch p.kind {
	case NetRefuse:
		return nil, fmt.Errorf("%s %s: %w: %w", req.Method, req.URL, errInjected, syscall.ECONNREFUSED)
	case Net5xx:
		body := `{"error":"chaos: injected shed"}`
		resp := &http.Response{
			Status:        fmt.Sprintf("%d %s", p.status, http.StatusText(p.status)),
			StatusCode:    p.status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		resp.Header.Set("Content-Type", "application/json")
		if p.retryAfter > 0 {
			resp.Header.Set("Retry-After", strconv.Itoa(p.retryAfter))
		}
		return resp, nil
	case NetLatency:
		if !sleepNetCtx(req.Context(), p.latency) {
			return nil, req.Context().Err()
		}
		return c.inner().RoundTrip(req)
	case NetCut:
		resp, err := c.inner().RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &cutBody{inner: resp.Body, remain: p.cutAfter}
		resp.ContentLength = -1
		return resp, nil
	default: // NetSlowBody
		resp, err := c.inner().RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &slowBody{inner: resp.Body, ctx: req.Context(), chunk: p.chunk, delay: p.chunkDelay}
		return resp, nil
	}
}

// sleepNetCtx waits d or until ctx is done, reporting whether the full
// wait elapsed.
func sleepNetCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// cutBody serves a prefix of the real body, then fails mid-stream — the
// connection died with the response half-transferred.
type cutBody struct {
	inner  io.ReadCloser
	remain int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("read: %w: %w", errInjected, syscall.ECONNRESET)
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The real body was shorter than the cut point; the cut never fired.
		return n, io.EOF
	}
	if err == nil && b.remain <= 0 {
		err = fmt.Errorf("read: %w: %w", errInjected, syscall.ECONNRESET)
	}
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }

// slowBody trickles the real body out a small chunk at a time, pausing
// between chunks until the reader's context dies.
type slowBody struct {
	inner io.ReadCloser
	ctx   context.Context
	chunk int
	delay time.Duration
}

func (b *slowBody) Read(p []byte) (int, error) {
	if err := b.ctx.Err(); err != nil {
		return 0, err
	}
	if !sleepNetCtx(b.ctx, b.delay) {
		return 0, b.ctx.Err()
	}
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.inner.Read(p)
}

func (b *slowBody) Close() error { return b.inner.Close() }
