package core_test

import (
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/irbuild"
	"dca/internal/sandbox"
)

// TestPermutedFaultIsNonCommutative: a loop whose body divides by zero only
// under a permuted schedule must be reported NonCommutative — the fault is a
// divergent observable behaviour (§IV live-out semantics), not an analysis
// error. In original order the divisor i-prev-2 is always -1 (prev tracks
// the previous i); under the reverse schedule the first replayed iteration
// sees i=1, prev=-1, so the divisor is zero.
func TestPermutedFaultIsNonCommutative(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var prev int = 0 - 1;
	var s int = 0;
	for (var i int = 0; i < 2; i++) {
		s += 10 / (i - prev - 2);
		prev = i;
	}
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := core.AnalyzeLoop(prog, "main", 0, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}},
	})
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Verdict != core.NonCommutative {
		t.Fatalf("verdict = %s (%s), want non-commutative", res.Verdict, res.Reason)
	}
	if res.TrapKind != sandbox.Fault.String() {
		t.Errorf("TrapKind = %q, want fault", res.TrapKind)
	}
	if !strings.Contains(res.Reason, "faulted where the golden run did not") {
		t.Errorf("reason = %q, want golden-vs-replay fault divergence", res.Reason)
	}
	if !strings.Contains(res.Reason, "division by zero") {
		t.Errorf("reason = %q, want underlying fault preserved", res.Reason)
	}
}

// TestBudgetDegradesToResourceExhausted: a loop whose dynamic stage keeps
// exhausting its budget is reported resource-exhausted after exactly one
// doubled-budget retry — not as a fault and not as non-commutative.
func TestBudgetDegradesToResourceExhausted(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 20; i++) { s += i; }
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := core.AnalyzeLoop(prog, "main", 0, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}},
		Inject:    sandbox.Inject{AtIntrinsic: 1, Kind: sandbox.Budget},
	})
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Verdict != core.ResourceExhausted {
		t.Fatalf("verdict = %s (%s), want resource-exhausted", res.Verdict, res.Reason)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want exactly one doubled-budget retry", res.Retries)
	}
	if res.TrapKind != sandbox.Budget.String() {
		t.Errorf("TrapKind = %q, want budget", res.TrapKind)
	}
}

// TestRetryRecoversTransientBudget: when the budget trap fires only once,
// the single doubled-budget retry completes the run and the loop still
// earns a real verdict.
func TestRetryRecoversTransientBudget(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 20; i++) { s += i; }
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := core.AnalyzeLoop(prog, "main", 0, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}},
		Inject:    sandbox.Inject{AtIntrinsic: 1, Kind: sandbox.Budget, MaxTrips: 1},
	})
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Verdict != core.Commutative {
		t.Fatalf("verdict = %s (%s), want commutative after retry", res.Verdict, res.Reason)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
}

// TestPanicIsolatedPerLoop: an injected panic in one loop's instrumented
// execution marks that loop failed but leaves every other loop's verdict
// intact in the same Analyze call.
func TestPanicIsolatedPerLoop(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var a []int = new [50]int;
	for (var i int = 0; i < 50; i++) { a[i] = i * 2; }
	var s int = 0;
	for (var i int = 0; i < 50; i++) { s += a[i]; }
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := core.Analyze(prog, core.Options{
		Schedules:  []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}},
		Inject:     sandbox.Inject{AtIntrinsic: 1, Kind: sandbox.Panic},
		InjectFn:   "main",
		InjectLoop: 0,
	})
	if err != nil {
		t.Fatalf("Analyze aborted instead of degrading: %v", err)
	}
	if len(rep.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(rep.Loops))
	}
	poisoned := rep.Result("main", 0)
	if poisoned.Verdict != core.Failed {
		t.Errorf("poisoned loop verdict = %s (%s), want failed", poisoned.Verdict, poisoned.Reason)
	}
	if poisoned.TrapKind != sandbox.Panic.String() {
		t.Errorf("poisoned TrapKind = %q, want panic", poisoned.TrapKind)
	}
	if !strings.Contains(poisoned.Reason, "panic") {
		t.Errorf("poisoned reason = %q, want panic mention", poisoned.Reason)
	}
	healthy := rep.Result("main", 1)
	if healthy.Verdict != core.Commutative {
		t.Errorf("healthy loop verdict = %s (%s), want commutative", healthy.Verdict, healthy.Reason)
	}
	if healthy.Retries != 0 || healthy.TrapKind != "" {
		t.Errorf("healthy loop picked up trap state: %+v", healthy)
	}
}

// TestInjectionBypassesProver: fault injection exists to test the dynamic
// machinery, so a loop targeted by an injector must never be decided by the
// static prover — even when it trivially proves. The trip point here is far
// past the end of every run, so the analysis completes normally and the
// bypass is visible as dynamic provenance with real execution evidence.
func TestInjectionBypassesProver(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var a []int = new [8]int;
	for (var i int = 0; i < 8; i++) { a[i] = i * 2; }
	print(a[7]);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt := core.Options{
		Schedules:  []dcart.Schedule{dcart.Reverse{}},
		Inject:     sandbox.Inject{AtStep: 1 << 40, Kind: sandbox.Fault},
		InjectFn:   "main",
		InjectLoop: 0,
	}
	res, err := core.AnalyzeLoop(prog, "main", 0, opt)
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Verdict != core.Commutative {
		t.Fatalf("verdict = %s (%s), want commutative", res.Verdict, res.Reason)
	}
	if res.Provenance == core.ProvenanceProved {
		t.Error("injected loop was decided by the static prover")
	}
	if res.Invocations == 0 {
		t.Error("injected loop has no dynamic evidence; the golden run must execute")
	}
	// The same loop without the injector IS prover territory.
	res, err = core.AnalyzeLoop(prog, "main", 0, core.Options{Schedules: opt.Schedules})
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Provenance != core.ProvenanceProved {
		t.Errorf("uninjected provenance = %q, want static-proved", res.Provenance)
	}
}

// TestNoRetryDegradesImmediately: with retries disabled (Retries < 0) a
// budget trap degrades the loop to resource-exhausted without any retry.
func TestNoRetryDegradesImmediately(t *testing.T) {
	prog, err := irbuild.Compile("t.mc", `
func main() {
	var s int = 0;
	for (var i int = 0; i < 200; i++) { s += i * i + (i % 7); }
	print(s);
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := core.AnalyzeLoop(prog, "main", 0, core.Options{
		Schedules: []dcart.Schedule{dcart.Reverse{}},
		Inject:    sandbox.Inject{AtIntrinsic: 1, Kind: sandbox.Budget},
		Retries:   -1, // disable retries: degrade immediately
	})
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	if res.Verdict != core.ResourceExhausted {
		t.Fatalf("verdict = %s (%s), want resource-exhausted", res.Verdict, res.Reason)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d, want 0 with retries disabled", res.Retries)
	}
}
