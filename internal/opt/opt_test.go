package opt_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/opt"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func runOut(t *testing.T, prog *ir.Program) (string, int64) {
	t.Helper()
	var out strings.Builder
	res, err := interp.Run(prog, interp.Config{Out: &out})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog)
	}
	return out.String(), res.Steps
}

func TestConstantFolding(t *testing.T) {
	prog := compile(t, `
func main() {
	var x int = 2 + 3 * 4;
	var y int = (100 / 5) % 7;
	var b bool = !(1 < 2);
	print(x, y, b);
}`)
	before, _ := runOut(t, prog)
	stats := opt.Program(prog)
	if err := prog.Verify(); err != nil {
		t.Fatalf("optimized IR invalid: %v", err)
	}
	after, steps := runOut(t, prog)
	if before != after {
		t.Errorf("semantics changed: %q vs %q", before, after)
	}
	if stats.Folded == 0 || stats.Propagated == 0 {
		t.Errorf("expected folds and propagations, got %+v", stats)
	}
	// All arithmetic on constants folds away; only moves/prints remain.
	if steps > 15 {
		t.Errorf("steps after opt = %d, expected a handful", steps)
	}
}

func TestBranchPruning(t *testing.T) {
	prog := compile(t, `
func main() {
	if (true) { print(1); } else { print(2); }
	if (1 > 2) { print(3); }
	print(4);
}`)
	before, _ := runOut(t, prog)
	stats := opt.Program(prog)
	after, _ := runOut(t, prog)
	if before != after {
		t.Errorf("semantics changed: %q vs %q", before, after)
	}
	if stats.BranchesPruned < 2 || stats.BlocksRemoved == 0 {
		t.Errorf("expected pruned branches and removed blocks: %+v", stats)
	}
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	prog := compile(t, `
func main() {
	var unused int = 3 * 14;
	var chain int = unused + 1;
	var alive int = 7;
	print(alive);
}`)
	stats := opt.Program(prog)
	if stats.InstrsEliminated == 0 {
		t.Errorf("expected eliminations: %+v", stats)
	}
	out, _ := runOut(t, prog)
	if out != "7\n" {
		t.Errorf("output = %q", out)
	}
}

func TestTrapsPreserved(t *testing.T) {
	// A dead division by a zero variable must not be eliminated.
	prog := compile(t, `
func main() {
	var z int = 0;
	var trap int = 1 / z;
	print(2);
}`)
	opt.Program(prog)
	var out strings.Builder
	_, err := interp.Run(prog, interp.Config{Out: &out})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("trap erased by the optimizer: err=%v out=%q", err, out.String())
	}
}

func TestConstantDivByZeroNotFolded(t *testing.T) {
	prog := compile(t, `
func main() {
	var x int = 1 / 0;
	print(x);
}`)
	opt.Program(prog)
	if _, err := interp.Run(prog, interp.Config{}); err == nil {
		t.Error("constant division by zero must still trap")
	}
}

// TestGoldenCorpusPreserved: the optimizer must preserve the output of the
// whole end-to-end corpus while reducing the dynamic instruction count.
func TestGoldenCorpusPreserved(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("..", "interp", "testdata", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	reducedSomewhere := false
	for _, src := range srcs {
		text, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		ref := compile(t, string(text))
		refOut, refSteps := runOut(t, ref)

		o := compile(t, string(text))
		opt.Program(o)
		if err := o.Verify(); err != nil {
			t.Fatalf("%s: invalid after opt: %v", src, err)
		}
		out, steps := runOut(t, o)
		if out != refOut {
			t.Errorf("%s: output changed by optimizer", src)
		}
		if steps > refSteps {
			t.Errorf("%s: optimizer made execution longer (%d > %d)", src, steps, refSteps)
		}
		if steps < refSteps {
			reducedSomewhere = true
		}
	}
	if !reducedSomewhere {
		t.Error("optimizer reduced nothing across the corpus")
	}
}

func TestIdempotentFixpoint(t *testing.T) {
	prog := compile(t, `
func main() {
	var a int = 1 + 2;
	var b int = a * 3;
	if (b == 9) { print(b); }
}`)
	opt.Program(prog)
	second := opt.Program(prog)
	if second.Total() != 0 {
		t.Errorf("second optimization round still rewrote: %+v", second)
	}
}
