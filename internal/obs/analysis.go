package obs

// AnalysisMetrics is the standard instrument set for the DCA analysis
// stack, registered on one registry and fed by trace events: it is a Sink,
// so the same event stream that produces JSONL traces produces /metrics
// samples, and the two can never disagree about what happened.
//
// Cardinality policy: label values are trap kinds (4), verdict names (8),
// and cache outcomes (2) — all closed sets. Loop identity stays in the
// trace stream.
type AnalysisMetrics struct {
	// ReplaySeconds observes the latency of every sandboxed execution:
	// the reference run, each golden run, and each schedule replay.
	ReplaySeconds *Histogram
	// Replays counts those executions.
	Replays *Counter
	// Traps counts abnormal terminations by sandbox trap kind.
	Traps *CounterVec
	// Retries counts doubled-budget retries spent.
	Retries *Counter
	// Verdicts counts finished loops by verdict name.
	Verdicts *CounterVec
	// CacheHits / CacheMisses count verdict-cache lookups as the analysis
	// saw them (the cache's own tiered counters live beside these).
	CacheHits   *Counter
	CacheMisses *Counter
	// CacheWriteErrors counts verdict-cache stores that failed on disk.
	CacheWriteErrors *Counter
	// JournalResumed counts loops whose verdict was replayed from the
	// write-ahead run journal; JournalErrors counts failed journal appends.
	JournalResumed *Counter
	JournalErrors  *Counter
	// ProvedLoops counts loops the static commutativity prover decided
	// (skipping their dynamic stage); ProveMisses counts prover attempts
	// that fell through to the dynamic stage.
	ProvedLoops *Counter
	ProveMisses *Counter
}

// NewAnalysisMetrics registers the analysis instrument set on r.
func NewAnalysisMetrics(r *Registry) *AnalysisMetrics {
	return &AnalysisMetrics{
		ReplaySeconds: r.Histogram("dca_replay_seconds",
			"Latency of sandboxed executions (reference, golden, and schedule replays).", nil),
		Replays: r.Counter("dca_replays_total",
			"Sandboxed executions performed (reference, golden, and schedule replays)."),
		Traps: r.CounterVec("dca_traps_total",
			"Abnormal execution terminations by sandbox trap kind.", "kind"),
		Retries: r.Counter("dca_replay_retries_total",
			"Doubled-budget retries spent on budget- or timeout-trapped executions."),
		Verdicts: r.CounterVec("dca_loops_total",
			"Loops finished, by final verdict.", "verdict"),
		CacheHits: r.Counter("dca_verdict_cache_hits_total",
			"Verdict-cache lookups that served a stored dynamic-stage outcome."),
		CacheMisses: r.Counter("dca_verdict_cache_misses_total",
			"Verdict-cache lookups that fell through to the dynamic stage."),
		CacheWriteErrors: r.Counter("dca_verdict_cache_write_errors_total",
			"Verdict-cache stores that failed to reach the disk tier."),
		JournalResumed: r.Counter("dca_journal_resumed_loops_total",
			"Loops whose verdict was replayed from the write-ahead run journal."),
		JournalErrors: r.Counter("dca_journal_append_errors_total",
			"Run-journal appends that failed; the run continues non-resumable."),
		ProvedLoops: r.Counter("dca_proved_loops_total",
			"Loops decided by the static commutativity prover (dynamic stage skipped)."),
		ProveMisses: r.Counter("dca_prove_misses_total",
			"Static-prover attempts that fell through to the dynamic stage."),
	}
}

// Emit folds one trace event into the instruments. Safe for concurrent
// use: every update is atomic.
func (m *AnalysisMetrics) Emit(ev Event) {
	switch ev.Stage {
	case StageReference, StageGolden, StageReplay:
		m.Replays.Inc()
		m.ReplaySeconds.Observe(ev.DurationMS / 1000)
		if ev.Trap != "" {
			m.Traps.Inc(ev.Trap)
		}
		if ev.Retries > 0 {
			m.Retries.Add(uint64(ev.Retries))
		}
	case StageCache:
		switch ev.Outcome {
		case OutcomeHit:
			m.CacheHits.Inc()
		case OutcomeMiss:
			m.CacheMisses.Inc()
		case OutcomeError:
			m.CacheWriteErrors.Inc()
		}
	case StageJournal:
		switch ev.Outcome {
		case OutcomeHit:
			m.JournalResumed.Inc()
		case OutcomeError:
			m.JournalErrors.Inc()
		}
	case StageProve:
		switch ev.Outcome {
		case OutcomeProved:
			m.ProvedLoops.Inc()
		case OutcomeMiss:
			m.ProveMisses.Inc()
		}
	case StageVerdict:
		m.Verdicts.Inc(ev.Verdict)
	}
}
