// Package scalar classifies loop-carried scalar dependences: for every
// local that is live into a loop header and redefined inside the loop, it
// decides whether the recurrence is a basic induction (i = i ± inv), an
// associative reduction (s = s op expr), a conditional min/max update, or a
// fatal carried dependence (such as the pointer chase ptr = ptr->next).
// Both the dynamic profilers and the static baselines share these matchers.
package scalar

import (
	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/ir"
)

// Class is the recurrence classification of one loop-carried scalar.
type Class int

// Classes, from most to least benign.
const (
	// Induction: i = i ± invariant on every in-loop definition.
	Induction Class = iota
	// Reduction: s = s op expr with op associative and s otherwise unused.
	Reduction
	// MinMax: if (x REL m) { m = x; } conditional update.
	MinMax
	// Fatal: any other loop-carried scalar recurrence.
	Fatal
)

var classNames = [...]string{"induction", "reduction", "minmax", "fatal"}

func (c Class) String() string { return classNames[c] }

// Carried is one classified loop-carried scalar.
type Carried struct {
	Local *ir.Local
	Class Class
	// Step is the constant stride for constant-step inductions (0 when the
	// step is symbolic or the class is not Induction).
	Step int64
	// Op is the combining operator for reductions.
	Op ir.BinKind
}

// Env bundles the per-function analyses classification needs.
type Env struct {
	G  *cfg.Graph
	PD *cfg.PostDom
	LV *dataflow.Liveness
}

// NewEnv computes the analyses for fn.
func NewEnv(fn *ir.Func) *Env {
	g := cfg.New(fn)
	return &Env{G: g, PD: cfg.ComputePostDom(g), LV: dataflow.ComputeLiveness(g)}
}

// Classify returns every loop-carried scalar of the loop with its class,
// ordered by local index.
func Classify(env *Env, loop *cfg.Loop) []Carried {
	liveHdr := env.LV.LiveIn[loop.Header]
	defs := map[*ir.Local][]ir.Instr{}
	uses := map[*ir.Local][]ir.Instr{}
	instrBlock := map[ir.Instr]*ir.Block{}
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			instrBlock[in] = b
			if d := in.Def(); d != nil {
				defs[d] = append(defs[d], in)
			}
			for _, u := range in.Uses() {
				if u.Local != nil {
					uses[u.Local] = append(uses[u.Local], in)
				}
			}
		}
		if b.Term != nil {
			for _, u := range b.Term.Uses() {
				if u.Local != nil {
					uses[u.Local] = append(uses[u.Local], nil) // terminator use
				}
			}
		}
	}
	invariant := func(o ir.Operand) bool {
		return o.Local == nil || len(defs[o.Local]) == 0
	}
	var out []Carried
	for _, l := range liveHdr.Sorted() {
		ds := defs[l]
		if len(ds) == 0 {
			continue
		}
		c := Carried{Local: l, Class: Fatal}
		if step, ok := inductionStep(l, ds, defs, invariant); ok {
			c.Class = Induction
			c.Step = step
		} else if op, ok := reductionOp(l, ds, uses[l], defs); ok {
			c.Class = Reduction
			c.Op = op
		} else if isMinMax(l, ds, uses[l], loop, env.PD, instrBlock) {
			c.Class = MinMax
		}
		out = append(out, c)
	}
	return out
}

// reachBinOp resolves a definition to the BinOp computing it, through one
// temporary move.
func reachBinOp(d ir.Instr, defs map[*ir.Local][]ir.Instr) *ir.BinOp {
	switch in := d.(type) {
	case *ir.BinOp:
		return in
	case *ir.Mov:
		if in.Src.Local == nil {
			return nil
		}
		tds := defs[in.Src.Local]
		if len(tds) != 1 {
			return nil
		}
		bo, _ := tds[0].(*ir.BinOp)
		return bo
	}
	return nil
}

// inductionStep recognizes l = l ± invariant; the returned step is the
// constant stride, or 0 with ok=true for symbolic invariant steps.
func inductionStep(l *ir.Local, ds []ir.Instr, defs map[*ir.Local][]ir.Instr, invariant func(ir.Operand) bool) (int64, bool) {
	var step int64
	haveStep := false
	for _, d := range ds {
		bo := reachBinOp(d, defs)
		if bo == nil {
			return 0, false
		}
		if bo.Op != ir.Add && bo.Op != ir.Sub {
			return 0, false
		}
		var other ir.Operand
		switch {
		case bo.X.Local == l && invariant(bo.Y):
			other = bo.Y
		case bo.Y.Local == l && bo.Op == ir.Add && invariant(bo.X):
			other = bo.X
		default:
			return 0, false
		}
		s := int64(0)
		if other.IsConst() && other.Const.Kind == ir.KindInt {
			s = other.Const.I
			if bo.Op == ir.Sub {
				s = -s
			}
		}
		if haveStep && s != step {
			step = 0 // conflicting strides: symbolic
		} else {
			step = s
		}
		haveStep = true
	}
	return step, true
}

// reductionOp recognizes l = l op expr with l otherwise unused.
func reductionOp(l *ir.Local, ds []ir.Instr, us []ir.Instr, defs map[*ir.Local][]ir.Instr) (ir.BinKind, bool) {
	allowed := map[ir.Instr]bool{}
	var op ir.BinKind
	haveOp := false
	for _, d := range ds {
		bo := reachBinOp(d, defs)
		if bo == nil {
			return 0, false
		}
		switch bo.Op {
		case ir.Add, ir.Sub, ir.Mul, ir.BitAnd, ir.BitOr, ir.BitXor:
		default:
			return 0, false
		}
		if bo.X.Local != l && bo.Y.Local != l {
			return 0, false
		}
		if bo.Op == ir.Sub && bo.X.Local != l {
			return 0, false
		}
		norm := bo.Op
		if norm == ir.Sub {
			norm = ir.Add // x -= e accumulates like addition
		}
		if haveOp && norm != op {
			return 0, false
		}
		op, haveOp = norm, true
		allowed[bo] = true
	}
	for _, u := range us {
		if u == nil || !allowed[u] {
			return 0, false
		}
	}
	return op, haveOp
}

// isMinMax recognizes the guarded move pattern if (x REL m) { m = x; }.
func isMinMax(l *ir.Local, ds []ir.Instr, us []ir.Instr, loop *cfg.Loop, pd *cfg.PostDom, instrBlock map[ir.Instr]*ir.Block) bool {
	for _, d := range ds {
		if _, ok := d.(*ir.Mov); !ok {
			return false
		}
	}
	if len(us) == 0 {
		return false
	}
	for _, u := range us {
		if u == nil {
			return false
		}
		bo, ok := u.(*ir.BinOp)
		if !ok || !bo.Op.IsComparison() {
			return false
		}
	}
	for _, d := range ds {
		guarded := false
		for _, a := range pd.ControllingBranches(instrBlock[d]) {
			if loop.Blocks[a] {
				guarded = true
			}
		}
		if !guarded {
			return false
		}
	}
	return true
}
