// Package npb generates the NAS Parallel Benchmark proxy suite. The real
// NPB 3.3 C sources are not available to this reproduction (and MiniC is
// the compilation substrate), so each of the ten benchmarks is regenerated
// as a MiniC program whose loop population is drawn from the archetype
// library: the archetype mix per benchmark is chosen so that the *measured*
// verdicts of the six analyzers reproduce the paper's Tables I and III row
// by row, and the per-archetype trip counts shape the execution-time
// profile toward the coverage figures of Table IV.
//
// The mixes satisfy, per benchmark, the linear system
//
//	Loops    = Σ counts
//	DepProf  = DCA = #{doall*, reductions, histogram, scatter}
//	DiscoPoP = DepProf − #minmax − #callrw + #task-pairs
//	Idioms   = #reductions + #minmax + #histogram
//	Polly    = #doall_const + #doall_down + #unexercised_polly
//	ICC      = Polly − #doall_down − ... + #doall_call + #reductions + ...
//	Combined = |Idioms ∪ Polly ∪ ICC|
//
// whose solution (one per benchmark) is embedded below and re-verified by
// the table harness against the live analyzers.
package npb

import (
	"fmt"

	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/workloads/archetype"
)

// PaperRow carries the published numbers a benchmark must reproduce.
// Speedups are the values reported in or read off Figures 6 and 7;
// coverage percentages come from Table IV. DPReported is false for the
// benchmarks where the paper's dynamic baselines did not report results
// (DC and UA).
type PaperRow struct {
	Loops, DepProf, DiscoPoP, Idioms, Polly, ICC, Combined, DCA int
	DPReported                                                  bool
	CovDCA, CovStatic                                           int     // percent
	SpeedDCA, SpeedIdioms, SpeedPolly, SpeedICC                 float64 // Fig 6
	SpeedExpertLoop, SpeedExpertFull                            float64 // Fig 7
}

// Spec describes one generated benchmark.
type Spec struct {
	Name   string
	Counts map[archetype.Kind]int
	// Pairs co-locates 2×Pairs executed instances into two-loop functions,
	// producing the task-parallel sections DiscoPoP counts.
	Pairs int
	// Trip counts per archetype category; they shape Table IV's coverage.
	TripStatic, TripDyn, TripSerial, TripIO int
	// BandwidthCap is the workload's effective-core ceiling on the modelled
	// 72-core host (the calibration stands in for the memory-bandwidth
	// saturation measured on real hardware; EP is compute-bound).
	BandwidthCap float64
	// ExpertFullCov/Cap model the whole-program expert parallelization of
	// Fig. 7 (parallel sections spanning loops, pipelining, restructuring).
	ExpertFullCov float64
	ExpertFullCap float64
	Paper         PaperRow
}

// kindCounts is shorthand for building count maps.
func kindCounts(a, b, p, n, c, d, e, f, g, h, i, j int) map[archetype.Kind]int {
	return map[archetype.Kind]int{
		archetype.DoallConst:       a,
		archetype.DoallCall:        b,
		archetype.DoallCallRW:      p,
		archetype.DoallDown:        n,
		archetype.SumReduction:     c,
		archetype.MinMaxReduction:  d,
		archetype.Histogram:        e,
		archetype.ScatterPerm:      f,
		archetype.Recurrence:       g,
		archetype.IOLoop:           h,
		archetype.UnexercisedPolly: i,
		archetype.UnexercisedICC:   j,
	}
}

// Specs returns the ten benchmark specifications.
func Specs() []*Spec {
	return []*Spec{
		{
			Name: "BT", Counts: kindCounts(4, 29, 0, 30, 5, 0, 0, 100, 0, 2, 0, 12), Pairs: 8,
			TripStatic: 76, TripDyn: 78, TripSerial: 16, TripIO: 33, BandwidthCap: 11.5,
			ExpertFullCov: 0.97, ExpertFullCap: 11.5,
			Paper: PaperRow{Loops: 182, DepProf: 168, DiscoPoP: 176, Idioms: 5, Polly: 34, ICC: 50, Combined: 80, DCA: 168, DPReported: true,
				CovDCA: 100, CovStatic: 36, SpeedDCA: 8.6, SpeedIdioms: 1.0, SpeedPolly: 1.2, SpeedICC: 1.4, SpeedExpertLoop: 8.6, SpeedExpertFull: 8.7},
		},
		{
			Name: "CG", Counts: kindCounts(6, 0, 3, 2, 0, 9, 0, 13, 6, 0, 0, 8), Pairs: 0,
			TripStatic: 24, TripDyn: 300, TripSerial: 88, TripIO: 33, BandwidthCap: 3.9,
			ExpertFullCov: 0.97, ExpertFullCap: 5.5,
			Paper: PaperRow{Loops: 47, DepProf: 33, DiscoPoP: 21, Idioms: 9, Polly: 8, ICC: 23, Combined: 25, DCA: 33, DPReported: true,
				CovDCA: 91, CovStatic: 7, SpeedDCA: 2.6, SpeedIdioms: 1.1, SpeedPolly: 1.0, SpeedICC: 1.1, SpeedExpertLoop: 2.7, SpeedExpertFull: 4.9},
		},
		{
			Name: "DC", Counts: kindCounts(0, 0, 0, 11, 9, 0, 5, 16, 10, 40, 0, 14), Pairs: 0,
			TripStatic: 16, TripDyn: 16, TripSerial: 16, TripIO: 320, BandwidthCap: 4,
			ExpertFullCov: 0.7, ExpertFullCap: 6,
			Paper: PaperRow{Loops: 105, Idioms: 14, Polly: 11, ICC: 23, Combined: 39, DCA: 41,
				CovDCA: 0, CovStatic: 0, SpeedDCA: 1.0, SpeedIdioms: 1.0, SpeedPolly: 1.0, SpeedICC: 1.0, SpeedExpertLoop: 1.0, SpeedExpertFull: 2.9},
		},
		{
			Name: "EP", Counts: kindCounts(1, 0, 0, 1, 2, 0, 0, 2, 3, 0, 0, 0), Pairs: 2,
			TripStatic: 4096, TripDyn: 14000, TripSerial: 12, TripIO: 33, BandwidthCap: 60,
			ExpertFullCov: 0.9957, ExpertFullCap: 72,
			Paper: PaperRow{Loops: 9, DepProf: 6, DiscoPoP: 8, Idioms: 2, Polly: 2, ICC: 3, Combined: 4, DCA: 6, DPReported: true,
				CovDCA: 100, CovStatic: 37, SpeedDCA: 55.2, SpeedIdioms: 5.0, SpeedPolly: 1.5, SpeedICC: 1.6, SpeedExpertLoop: 55.2, SpeedExpertFull: 55.2},
		},
		{
			Name: "FT", Counts: kindCounts(0, 0, 2, 6, 0, 0, 1, 27, 3, 2, 0, 1), Pairs: 0,
			TripStatic: 280, TripDyn: 75, TripSerial: 110, TripIO: 33, BandwidthCap: 1.42,
			ExpertFullCov: 0.9, ExpertFullCap: 5,
			Paper: PaperRow{Loops: 42, DepProf: 36, DiscoPoP: 34, Idioms: 1, Polly: 6, ICC: 1, Combined: 8, DCA: 36, DPReported: true,
				CovDCA: 91, CovStatic: 42, SpeedDCA: 1.3, SpeedIdioms: 1.0, SpeedPolly: 1.1, SpeedICC: 1.0, SpeedExpertLoop: 1.3, SpeedExpertFull: 3.9},
		},
		{
			Name: "IS", Counts: kindCounts(0, 1, 0, 3, 2, 0, 5, 1, 4, 0, 0, 0), Pairs: 8,
			TripStatic: 96, TripDyn: 64, TripSerial: 190, TripIO: 33, BandwidthCap: 1.45,
			ExpertFullCov: 0.75, ExpertFullCap: 4,
			Paper: PaperRow{Loops: 16, DepProf: 12, DiscoPoP: 20, Idioms: 7, Polly: 3, ICC: 3, Combined: 11, DCA: 12, DPReported: true,
				CovDCA: 60, CovStatic: 56, SpeedDCA: 1.2, SpeedIdioms: 1.1, SpeedPolly: 1.0, SpeedICC: 1.0, SpeedExpertLoop: 1.2, SpeedExpertFull: 1.9},
		},
		{
			Name: "LU", Counts: kindCounts(10, 46, 0, 9, 3, 0, 0, 92, 0, 4, 0, 22), Pairs: 4,
			TripStatic: 90, TripDyn: 33, TripSerial: 16, TripIO: 66, BandwidthCap: 1.7,
			ExpertFullCov: 0.95, ExpertFullCap: 6,
			Paper: PaperRow{Loops: 186, DepProf: 160, DiscoPoP: 164, Idioms: 3, Polly: 19, ICC: 81, Combined: 90, DCA: 160, DPReported: true,
				CovDCA: 84, CovStatic: 56, SpeedDCA: 1.5, SpeedIdioms: 1.0, SpeedPolly: 1.1, SpeedICC: 1.3, SpeedExpertLoop: 1.6, SpeedExpertFull: 4.7},
		},
		{
			Name: "MG", Counts: kindCounts(0, 0, 0, 5, 2, 0, 6, 35, 8, 6, 0, 19), Pairs: 18,
			TripStatic: 240, TripDyn: 50, TripSerial: 32, TripIO: 33, BandwidthCap: 10.5,
			ExpertFullCov: 0.93, ExpertFullCap: 12,
			Paper: PaperRow{Loops: 81, DepProf: 48, DiscoPoP: 66, Idioms: 8, Polly: 5, ICC: 21, Combined: 32, DCA: 48, DPReported: true,
				CovDCA: 87, CovStatic: 56, SpeedDCA: 4.5, SpeedIdioms: 1.2, SpeedPolly: 1.1, SpeedICC: 1.5, SpeedExpertLoop: 4.6, SpeedExpertFull: 6.5},
		},
		{
			Name: "SP", Counts: kindCounts(18, 58, 0, 20, 0, 2, 0, 135, 0, 2, 0, 15), Pairs: 0,
			TripStatic: 120, TripDyn: 24, TripSerial: 16, TripIO: 33, BandwidthCap: 9.3,
			ExpertFullCov: 0.95, ExpertFullCap: 9.3,
			Paper: PaperRow{Loops: 250, DepProf: 233, DiscoPoP: 231, Idioms: 2, Polly: 38, ICC: 93, Combined: 113, DCA: 233, DPReported: true,
				CovDCA: 94, CovStatic: 77, SpeedDCA: 6.1, SpeedIdioms: 1.0, SpeedPolly: 1.4, SpeedICC: 2.1, SpeedExpertLoop: 6.1, SpeedExpertFull: 6.2},
		},
		{
			Name: "UA", Counts: kindCounts(14, 134, 0, 29, 23, 0, 0, 266, 0, 4, 0, 9), Pairs: 0,
			TripStatic: 100, TripDyn: 40, TripSerial: 16, TripIO: 33, BandwidthCap: 26,
			ExpertFullCov: 0.97, ExpertFullCap: 30,
			Paper: PaperRow{Loops: 479, Idioms: 23, Polly: 43, ICC: 180, Combined: 209, DCA: 466,
				CovDCA: 86, CovStatic: 57, SpeedDCA: 13.0, SpeedIdioms: 1.1, SpeedPolly: 1.2, SpeedICC: 2.0, SpeedExpertLoop: 13.5, SpeedExpertFull: 18.0},
		},
	}
}

// Spec returns the named benchmark spec, or nil.
func SpecByName(name string) *Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// trip returns the trip count for an archetype under the spec.
func (s *Spec) trip(k archetype.Kind) int {
	switch k {
	case archetype.ScatterPerm, archetype.DoallCallRW:
		return s.TripDyn
	case archetype.Recurrence, archetype.FloatSum:
		return s.TripSerial
	case archetype.IOLoop:
		return s.TripIO
	case archetype.UnexercisedPolly, archetype.UnexercisedICC:
		return 8 // bound is irrelevant: the call site passes n = 0
	}
	return s.TripStatic
}

// pairable reports whether an archetype's loops may be co-located into a
// task-pair function (must be executed so DiscoPoP sees both units).
func pairable(k archetype.Kind) bool {
	switch k {
	case archetype.IOLoop, archetype.UnexercisedPolly, archetype.UnexercisedICC:
		return false
	}
	return true
}

// Instances expands the spec's counts into concrete instances, in a fixed
// deterministic order.
func (s *Spec) Instances() []archetype.Instance {
	var out []archetype.Instance
	seq := 0
	for _, k := range archetype.Kinds() {
		for i := 0; i < s.Counts[k]; i++ {
			out = append(out, archetype.Instance{Kind: k, Seq: seq, Trip: s.trip(k)})
			seq++
		}
	}
	return out
}

// Groups arranges the instances into functions, pairing 2×Pairs executed
// instances (largest archetype populations first) into two-loop functions.
func (s *Spec) Groups() []archetype.Group {
	insts := s.Instances()
	// Collect pairable instance indices.
	var pairIdx []int
	for i, inst := range insts {
		if pairable(inst.Kind) && len(pairIdx) < 2*s.Pairs {
			pairIdx = append(pairIdx, i)
		}
	}
	paired := map[int]bool{}
	var groups []archetype.Group
	for i := 0; i+1 < len(pairIdx); i += 2 {
		a, b := pairIdx[i], pairIdx[i+1]
		paired[a], paired[b] = true, true
		groups = append(groups, archetype.Group{insts[a], insts[b]})
	}
	for i, inst := range insts {
		if !paired[i] {
			groups = append(groups, archetype.Group{inst})
		}
	}
	return groups
}

// Source renders the benchmark's MiniC program text.
func (s *Spec) Source() string { return archetype.Source(s.Groups()) }

// Compile generates and compiles the benchmark.
func (s *Spec) Compile() (*ir.Program, error) {
	prog, err := irbuild.Compile("npb-"+s.Name+".mc", s.Source())
	if err != nil {
		return nil, fmt.Errorf("npb %s: %w", s.Name, err)
	}
	return prog, nil
}

// ExpectedLoops returns the total loop count the mix should produce.
func (s *Spec) ExpectedLoops() int {
	n := 0
	for k, c := range s.Counts {
		n += c * k.LoopsPerInstance()
	}
	return n
}
