// Package opt provides classic scalar IR optimizations: constant folding,
// block-local copy/constant propagation, branch simplification, unreachable
// block removal and dead code elimination. The passes are semantics-
// preserving for program results, but they change the *instruction
// population* (folded loads, removed temporaries), so the analysis pipeline
// runs on unoptimized IR by default — the optimizer exists for `dca run
// -opt`, for making the interpreter cheaper on hot workloads, and as part
// of the compiler substrate a downstream user would expect.
package opt

import (
	"dca/internal/interp"
	"dca/internal/ir"
)

// Stats counts what the optimizer did.
type Stats struct {
	Folded           int // BinOp/UnOp replaced by constants
	Propagated       int // operands rewritten to constants/earlier locals
	BranchesPruned   int // constant If terminators rewritten to Goto
	BlocksRemoved    int // unreachable blocks dropped
	InstrsEliminated int // dead instructions removed
}

// Total reports the total number of rewrites.
func (s Stats) Total() int {
	return s.Folded + s.Propagated + s.BranchesPruned + s.BlocksRemoved + s.InstrsEliminated
}

func (s *Stats) add(o Stats) {
	s.Folded += o.Folded
	s.Propagated += o.Propagated
	s.BranchesPruned += o.BranchesPruned
	s.BlocksRemoved += o.BlocksRemoved
	s.InstrsEliminated += o.InstrsEliminated
}

// Program optimizes every function to a bounded fixpoint.
func Program(prog *ir.Program) Stats {
	var total Stats
	for _, fn := range prog.Funcs {
		total.add(Func(fn))
	}
	return total
}

// Func optimizes one function.
func Func(fn *ir.Func) Stats {
	var total Stats
	for round := 0; round < 8; round++ {
		var s Stats
		s.Propagated += propagate(fn)
		s.Folded += fold(fn)
		s.BranchesPruned += pruneBranches(fn)
		s.BlocksRemoved += removeUnreachable(fn)
		s.InstrsEliminated += eliminateDead(fn)
		total.add(s)
		if s.Total() == 0 {
			break
		}
	}
	return total
}

// propagate performs block-local forward copy/constant propagation: within
// one block, a use of a local whose most recent definition in the same
// block was `Mov src` is replaced by src (when src is a constant, or a
// local not redefined in between).
func propagate(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		// version tracks redefinitions of source locals.
		version := map[*ir.Local]int{}
		type binding struct {
			op  ir.Operand
			ver int
		}
		bind := map[*ir.Local]binding{}
		lookup := func(o ir.Operand) (ir.Operand, bool) {
			if o.Local == nil {
				return o, false
			}
			bd, ok := bind[o.Local]
			if !ok {
				return o, false
			}
			if bd.op.Local != nil && version[bd.op.Local] != bd.ver {
				return o, false // source redefined since the Mov
			}
			return bd.op, true
		}
		rewrite := func(o *ir.Operand) {
			if no, ok := lookup(*o); ok {
				*o = no
				n++
			}
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Mov:
				rewrite(&i.Src)
			case *ir.BinOp:
				rewrite(&i.X)
				rewrite(&i.Y)
			case *ir.UnOp:
				rewrite(&i.X)
			case *ir.Load:
				rewrite(&i.Base)
				rewrite(&i.Index)
			case *ir.Store:
				rewrite(&i.Base)
				rewrite(&i.Index)
				rewrite(&i.Src)
			case *ir.Alloc:
				if i.Struct == nil {
					rewrite(&i.Count)
				}
			case *ir.Call:
				for k := range i.Args {
					rewrite(&i.Args[k])
				}
			case *ir.Print:
				for k := range i.Args {
					rewrite(&i.Args[k])
				}
			case *ir.Intrinsic:
				for k := range i.Args {
					rewrite(&i.Args[k])
				}
			}
			if d := in.Def(); d != nil {
				version[d]++
				delete(bind, d)
				if mv, ok := in.(*ir.Mov); ok {
					src := mv.Src
					if src.Local != d { // self-moves bind nothing
						bd := binding{op: src}
						if src.Local != nil {
							bd.ver = version[src.Local]
						}
						bind[d] = bd
					}
				}
			}
		}
		switch t := b.Term.(type) {
		case *ir.If:
			rewrite(&t.Cond)
		case *ir.Ret:
			if t.Val != nil {
				rewrite(t.Val)
			}
		}
	}
	return n
}

// fold replaces pure operations on constants with constant moves.
func fold(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		for idx, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.BinOp:
				if i.X.IsConst() && i.Y.IsConst() {
					v, err := interp.EvalBinOp(i.Op, i.X.Const, i.Y.Const)
					if err != nil {
						continue // division by zero etc.: keep the trap
					}
					b.Instrs[idx] = &ir.Mov{Dst: i.Dst, Src: ir.ConstOp(v)}
					n++
				}
			case *ir.UnOp:
				if !i.X.IsConst() {
					continue
				}
				x := i.X.Const
				switch {
				case i.Op == ir.Neg && x.Kind == ir.KindInt:
					b.Instrs[idx] = &ir.Mov{Dst: i.Dst, Src: ir.ConstOp(ir.IntVal(-x.I))}
					n++
				case i.Op == ir.Neg && x.Kind == ir.KindFloat:
					b.Instrs[idx] = &ir.Mov{Dst: i.Dst, Src: ir.ConstOp(ir.FloatVal(-x.F))}
					n++
				case i.Op == ir.Not && x.Kind == ir.KindBool:
					b.Instrs[idx] = &ir.Mov{Dst: i.Dst, Src: ir.ConstOp(ir.BoolVal(!x.Bool()))}
					n++
				}
			}
		}
	}
	return n
}

// pruneBranches rewrites constant conditional branches to jumps.
func pruneBranches(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		t, ok := b.Term.(*ir.If)
		if !ok || !t.Cond.IsConst() || t.Cond.Const.Kind != ir.KindBool {
			continue
		}
		if t.Cond.Const.Bool() {
			b.Term = &ir.Goto{Target: t.Then}
		} else {
			b.Term = &ir.Goto{Target: t.Else}
		}
		n++
	}
	return n
}

// removeUnreachable drops blocks no path reaches.
func removeUnreachable(fn *ir.Func) int {
	reach := map[*ir.Block]bool{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		if b.Term == nil {
			return
		}
		for _, s := range b.Term.Succs() {
			walk(s)
		}
	}
	walk(fn.Entry())
	if len(reach) == len(fn.Blocks) {
		return 0
	}
	kept := fn.Blocks[:0]
	removed := 0
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	fn.Blocks = kept
	fn.Renumber()
	return removed
}

// eliminateDead removes pure instructions whose results are never used.
// Instructions that can fault (Div/Rem by zero, Loads that may trap on nil
// or out-of-range indices) are kept so the optimizer never erases an
// observable runtime error; calls, stores, prints, allocs and intrinsics
// are kept for their effects.
func eliminateDead(fn *ir.Func) int {
	used := map[*ir.Local]bool{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for _, o := range in.Uses() {
				if o.Local != nil {
					used[o.Local] = true
				}
			}
		}
		if b.Term != nil {
			for _, o := range b.Term.Uses() {
				if o.Local != nil {
					used[o.Local] = true
				}
			}
		}
	}
	n := 0
	for _, b := range fn.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			dead := false
			switch i := in.(type) {
			case *ir.BinOp:
				if i.Op != ir.Div && i.Op != ir.Rem {
					dead = !used[i.Dst]
				}
			case *ir.UnOp:
				dead = !used[i.Dst]
			case *ir.Mov:
				dead = !used[i.Dst]
			}
			if dead {
				n++
			} else {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	return n
}
