// Package prove implements the static commutativity prover: a stage that
// runs after the static stage (selection/separation/instrumentation) and
// before the dynamic stage, attempting to decide commutativity symbolically
// so that provable loops skip every schedule replay (the single golden run
// is kept as the coverage witness — a proof quantifies over iteration
// orders but cannot tell whether the workload exercises the loop at all).
// Three arguments are attempted in order:
//
//	affine-disjoint — every loop-carried memory pair is proven independent
//	                  by the affine dependence tests and the only carried
//	                  scalar is the primary induction variable;
//	pure-disjoint   — the same memory argument, but the payload may call
//	                  hermetic functions (transitively free of memory
//	                  effects, I/O, allocation, loops, and recursion);
//	reduction       — the loop-carried state is confined to integer scalar
//	                  reductions / min-max recurrences and memory-reduction
//	                  groups ("location op= expr"), none of whose
//	                  intermediate values leak.
//
// Every check is conservative: a failed proof falls through to the dynamic
// stage unchanged. The soundness contract the checks enforce is that each
// iteration's behaviour is a function of (its recorded induction value,
// deterministically restarted inner-loop IVs, loop-invariant locals, and
// memory no other iteration writes), and that all cross-iteration state is
// either disjoint or updated through a commutative-associative fold.
package prove

import (
	"fmt"
	"strings"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/pointer"
	"dca/internal/polly"
	"dca/internal/purity"
	"dca/internal/scalar"
)

// Argument names reported on proved loops.
const (
	ArgAffine    = "affine-disjoint"
	ArgPure      = "pure-disjoint"
	ArgReduction = "reduction"
)

// Result is the prover's decision for one loop.
type Result struct {
	// Proved reports a successful commutativity proof; Argument names the
	// argument that closed it.
	Proved   bool
	Argument string
	// Reason collects the per-argument obstructions of a failed proof.
	Reason string
}

// Loop attempts a static commutativity proof for the loopIndex-th loop of
// the named function. pur carries the program's purity facts (the caller
// already has them); the interprocedural points-to solve is shared through
// prog.AnalysisCache with the instrumentation pass.
func Loop(prog *ir.Program, fnName string, loopIndex int, pur *purity.Info) Result {
	fn := prog.Func(fnName)
	if fn == nil {
		return Result{Reason: fmt.Sprintf("no function %q", fnName)}
	}
	env := affine.NewEnv(fn)
	var loop *cfg.Loop
	for _, l := range env.Loops {
		if l.Index == loopIndex {
			loop = l
		}
	}
	if loop == nil {
		return Result{Reason: fmt.Sprintf("%s has no loop %d", fnName, loopIndex)}
	}
	if why := eligible(env, loop); why != "" {
		return Result{Reason: why}
	}
	pa := prog.AnalysisCache(func() any { return pointer.Analyze(prog) }).(*pointer.Analysis)
	p := newProver(prog, fn, env, pa, pur, loop)
	carried := scalar.Classify(env.Env, loop)

	var whys []string
	usedCalls, why := p.disjoint(carried)
	if why == "" {
		if usedCalls {
			return Result{Proved: true, Argument: ArgPure}
		}
		return Result{Proved: true, Argument: ArgAffine}
	}
	whys = append(whys, "disjoint: "+why)
	if why := p.reduction(carried); why == "" {
		return Result{Proved: true, Argument: ArgReduction}
	} else {
		whys = append(whys, "reduction: "+why)
	}
	return Result{Reason: strings.Join(whys, "; ")}
}

// eligible enforces the preconditions every argument shares: a countable
// loop whose trip count is constant or symbolic — a commutativity proof
// quantifies over every iteration pair, so it holds for any trip count, and
// affine.Carried treats an unknown trip conservatively (any nonzero
// iteration distance may carry). Only a loop statically known to never
// iterate is rejected: it is degenerate, and its dynamic NotExecuted
// verdict is the more informative one. Beyond countability: a single exit
// taken from the header (so every loop-defined exit-live local is
// header-live-in and therefore classified by scalar.Classify), no hidden
// exits via in-loop returns, a whitelisted instruction set, and inner loops
// with constant bounds (their IVs then restart identically every iteration,
// which the affine residual-range model assumes).
func eligible(env *affine.Env, loop *cfg.Loop) string {
	info := env.Info[loop]
	if info == nil {
		return "loop not analyzed"
	}
	if !info.OK {
		return "loop not countable: " + info.Why
	}
	if info.Trip == 0 {
		return "loop statically never iterates"
	}
	if len(loop.Exits) != 1 || len(loop.ExitSrcs) != 1 || loop.ExitSrcs[0] != loop.Header {
		return "loop has early exits"
	}
	for b := range loop.Blocks {
		switch b.Term.(type) {
		case *ir.If, *ir.Goto:
		default:
			return "in-loop return"
		}
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ir.BinOp, *ir.UnOp, *ir.Mov, *ir.Load, *ir.Store, *ir.Call:
			case *ir.Print:
				return "I/O in loop"
			case *ir.Alloc:
				return "allocation in loop"
			default:
				return fmt.Sprintf("unrecognized instruction %T in loop", in)
			}
		}
	}
	for _, l2 := range env.Loops {
		if l2 != loop && loop.Blocks[l2.Header] {
			i2 := env.Info[l2]
			if i2 == nil || !i2.OK || i2.Trip < 0 {
				return "inner loop without a static trip count"
			}
		}
	}
	return ""
}

// prover bundles the per-loop analysis state the arguments share.
type prover struct {
	prog *ir.Program
	fn   *ir.Func
	env  *affine.Env
	pa   *pointer.Analysis
	pur  *purity.Info
	loop *cfg.Loop
	info *affine.LoopInfo
	// innerIVs holds the primary IVs of loops nested inside loop.
	innerIVs map[*ir.Local]bool
	// defs/uses/termUses index the loop body: instruction definitions and
	// uses per local, and blocks whose terminator condition uses a local.
	defs     map[*ir.Local][]ir.Instr
	uses     map[*ir.Local][]ir.Instr
	termUses map[*ir.Local][]*ir.Block
	// instrBlock/instrIndex locate each loop-body instruction: its block and
	// its position in the RPO-linearized body (for same-block ordering).
	instrBlock map[ir.Instr]*ir.Block
	instrIndex map[ir.Instr]int
	// blocks is the loop body in the function's RPO order.
	blocks []*ir.Block
	// herm memoizes hermeticFn: 1 = not hermetic (or in progress), 2 = yes.
	herm map[string]int
}

func newProver(prog *ir.Program, fn *ir.Func, env *affine.Env, pa *pointer.Analysis, pur *purity.Info, loop *cfg.Loop) *prover {
	p := &prover{
		prog: prog, fn: fn, env: env, pa: pa, pur: pur, loop: loop,
		info:       env.Info[loop],
		innerIVs:   map[*ir.Local]bool{},
		defs:       map[*ir.Local][]ir.Instr{},
		uses:       map[*ir.Local][]ir.Instr{},
		termUses:   map[*ir.Local][]*ir.Block{},
		instrBlock: map[ir.Instr]*ir.Block{},
		instrIndex: map[ir.Instr]int{},
		herm:       map[string]int{},
	}
	for _, l2 := range env.Loops {
		if l2 != loop && loop.Blocks[l2.Header] {
			if i2 := env.Info[l2]; i2 != nil && i2.IV != nil {
				p.innerIVs[i2.IV] = true
			}
		}
	}
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		p.blocks = append(p.blocks, b)
		for _, in := range b.Instrs {
			p.instrBlock[in] = b
			p.instrIndex[in] = len(p.instrIndex)
			if d := in.Def(); d != nil {
				p.defs[d] = append(p.defs[d], in)
			}
			for _, u := range in.Uses() {
				if u.Local != nil {
					p.uses[u.Local] = append(p.uses[u.Local], in)
				}
			}
		}
		if b.Term != nil {
			for _, u := range b.Term.Uses() {
				if u.Local != nil {
					p.termUses[u.Local] = append(p.termUses[u.Local], b)
				}
			}
		}
	}
	return p
}

// subscriptTermsOK restricts a subscript's symbolic terms to values that
// are identical across any reordering of the tested loop's iterations: the
// loop's own primary IV (linearized and recorded per iteration), primary
// IVs of constant-bound inner loops (which restart identically), and
// loop-invariant symbols. Secondary inductions — of this loop or of an
// inner one — are rejected: their per-iteration starting values are not
// modeled by the affine residual-range logic.
func (p *prover) subscriptTermsOK(sub *affine.LinExpr) bool {
	for t, c := range sub.Coeffs {
		if c == 0 || t == p.info.IV || p.innerIVs[t] {
			continue
		}
		if len(p.defs[t]) == 0 {
			continue // invariant in this loop
		}
		return false
	}
	return true
}

// hermeticFn reports whether calling the named function is a pure
// computation over its arguments: transitively no loads, stores,
// allocations, I/O, intrinsics, loops, or recursion. Purity facts prescreen
// the cheap cases; the transitive scan adds the heap-read and termination
// restrictions purity does not track.
func (p *prover) hermeticFn(name string) bool {
	switch p.herm[name] {
	case 1:
		return false // known bad, or in progress (recursion)
	case 2:
		return true
	}
	p.herm[name] = 1
	if !p.pur.Pure(name) || p.pur.Allocates[name] {
		return false
	}
	fn := p.prog.Func(name)
	if fn == nil {
		return false
	}
	ok := true
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.BinOp, *ir.UnOp, *ir.Mov:
			case *ir.Call:
				if !i.Builtin && !p.hermeticFn(i.Callee) {
					ok = false
				}
			default:
				ok = false // Load, Store, Alloc, Print, Intrinsic
			}
		}
	}
	if ok {
		// Loop-free bodies terminate; loops (even pure ones) could run
		// past the dynamic stage's budgets, which a proof must not outlive.
		if _, loops := cfg.LoopsOf(fn); len(loops) > 0 {
			ok = false
		}
	}
	if ok {
		p.herm[name] = 2
	}
	return ok
}

// disjoint is the affine-disjoint / pure-disjoint argument: the only
// loop-carried scalar is the primary IV, every access is affine over
// order-invariant terms, and the dependence tests clear every write/any
// pair. usedCalls reports whether the proof leaned on hermetic callees
// (distinguishing ArgPure from ArgAffine).
func (p *prover) disjoint(carried []scalar.Carried) (usedCalls bool, why string) {
	for _, c := range carried {
		if c.Class != scalar.Induction || c.Local != p.info.IV {
			return false, fmt.Sprintf("loop-carried scalar %q (%s)", c.Local.Name, c.Class)
		}
	}
	for _, b := range p.blocks {
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Load:
				if i.FieldName != "" {
					return usedCalls, "pointer field access"
				}
			case *ir.Store:
				if i.FieldName != "" {
					return usedCalls, "pointer field access"
				}
			case *ir.Call:
				if i.Builtin {
					continue
				}
				usedCalls = true
				if !p.hermeticFn(i.Callee) {
					return usedCalls, fmt.Sprintf("call to non-hermetic function %q", i.Callee)
				}
			}
		}
	}
	accs := p.env.Accesses(p.loop)
	for _, a := range accs {
		if a.SubErr != nil {
			return usedCalls, "non-affine subscript: " + a.SubErr.Error()
		}
		if !p.subscriptTermsOK(a.Sub) {
			return usedCalls, "subscript depends on a secondary induction"
		}
	}
	if reasons := polly.CarriedMemoryDeps(p.env, p.pa, p.loop, accs, nil); len(reasons) > 0 {
		return usedCalls, reasons[0]
	}
	return usedCalls, ""
}
