package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dca/internal/bench"
)

// AnalysisBench is the machine-readable record of the parallel-engine
// benchmark, written to BENCH_analysis.json by BenchmarkSuiteAnalysis.
type AnalysisBench struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	WorkersParallel   int     `json:"workers_parallel"`
	SuiteSecondsSeq   float64 `json:"suite_seconds_sequential"`
	SuiteSecondsPar   float64 `json:"suite_seconds_parallel"`
	Speedup           float64 `json:"speedup"`
	AllocBytesSeq     uint64  `json:"alloc_bytes_sequential"`
	AllocBytesPar     uint64  `json:"alloc_bytes_parallel"`
	VerdictsIdentical bool    `json:"verdicts_identical"`
}

// timedSuite runs the full NPB suite at the given worker count, returning
// the suite, wall-clock, and heap bytes allocated during the run.
func timedSuite(b *testing.B, workers int) (*bench.Suite, time.Duration, uint64) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	s, err := bench.RunSuiteWorkers(workers)
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	return s, dur, after.TotalAlloc - before.TotalAlloc
}

// BenchmarkSuiteAnalysis measures the analysis engine's suite-level
// speedup: the full NPB run at -j 1 versus -j GOMAXPROCS. It asserts the
// two produce byte-identical Tables I/III/IV and records the measurement
// in BENCH_analysis.json (run via `go test -run=^$ -bench=SuiteAnalysis
// -benchtime=1x .`). The ≥3x speedup floor is asserted only on hosts with
// at least 4 CPUs; on smaller hosts the file still records the ratio.
func BenchmarkSuiteAnalysis(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		seq, seqDur, seqAlloc := timedSuite(b, 1)
		par, parDur, parAlloc := timedSuite(b, procs)

		identical := seq.TableI() == par.TableI() &&
			seq.TableIII() == par.TableIII() &&
			seq.TableIV() == par.TableIV()
		if !identical {
			b.Fatalf("parallel suite diverged from sequential:\nseq TableI:\n%s\npar TableI:\n%s",
				seq.TableI(), par.TableI())
		}
		rec := AnalysisBench{
			GOMAXPROCS:        procs,
			WorkersParallel:   procs,
			SuiteSecondsSeq:   seqDur.Seconds(),
			SuiteSecondsPar:   parDur.Seconds(),
			Speedup:           seqDur.Seconds() / parDur.Seconds(),
			AllocBytesSeq:     seqAlloc,
			AllocBytesPar:     parAlloc,
			VerdictsIdentical: identical,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_analysis.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "suite: seq %.2fs, par(-j %d) %.2fs, speedup %.2fx\n",
			rec.SuiteSecondsSeq, procs, rec.SuiteSecondsPar, rec.Speedup)
		if procs >= 4 && rec.Speedup < 3 {
			b.Fatalf("suite speedup %.2fx below the 3x floor at -j %d", rec.Speedup, procs)
		}
		b.ReportMetric(rec.Speedup, "speedup")
	}
}
