// Package ir defines the three-address intermediate representation that the
// DCA passes analyze and transform. A Func is a list of basic blocks over a
// flat set of typed locals; memory is a heap of Objects addressed by
// (object, element index) pairs — the same address model the dependence
// profilers trace.
package ir

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dca/internal/source"
	"dca/internal/types"
)

// Program is a compiled MiniC program.
type Program struct {
	Name    string
	Funcs   []*Func
	Structs map[string]*types.StructInfo

	// execCache memoizes an executor-built artifact (the bytecode VM's
	// compiled form) so one compilation serves the golden run and every
	// replay of the same program. See ExecCache.
	execCache atomic.Value
	// analysisCache memoizes a whole-program analysis artifact (the
	// points-to analysis) under the same contract; separate from execCache
	// so the two consumers cannot evict each other.
	analysisCache atomic.Value
}

// ExecCache returns the memoized execution artifact for this program,
// calling build at most effectively once to create it (concurrent first
// callers may both build; one result wins). The artifact must be derived
// purely from the program's IR and safe for concurrent use; callers must
// not mutate the program after the first execution. Clone starts with an
// empty cache, so the transform pipeline (clone → instrument → run) never
// observes a stale artifact.
func (p *Program) ExecCache(build func() any) any {
	if v := p.execCache.Load(); v != nil {
		return v
	}
	v := build()
	if p.execCache.CompareAndSwap(nil, v) {
		return v
	}
	return p.execCache.Load()
}

// AnalysisCache memoizes a whole-program analysis artifact, with the same
// contract as ExecCache: built at most effectively once, derived purely
// from the IR, safe for concurrent use, and never stale because Clone and
// CloneShared start with an empty cache.
func (p *Program) AnalysisCache(build func() any) any {
	if v := p.analysisCache.Load(); v != nil {
		return v
	}
	v := build()
	if p.analysisCache.CompareAndSwap(nil, v) {
		return v
	}
	return p.analysisCache.Load()
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// CloneShared returns a copy of the program in which the named function is
// deep-cloned and every other function is SHARED with the receiver. The
// instrumentation pipeline rewrites exactly one function per loop; sharing
// the rest makes cloning O(one function) instead of O(program) and lets the
// executors reuse per-function artifacts across the clones. Callers must
// treat the shared functions as immutable (every analysis and executor
// already does) and may append new functions freely — the Funcs slice and
// struct table are fresh. The shared functions keep their original Prog
// back-pointer; only the cloned function points at the new program.
func (p *Program) CloneShared(name string) *Program {
	q := &Program{Name: p.Name, Funcs: make([]*Func, 0, len(p.Funcs)+2)}
	if p.Structs != nil {
		q.Structs = make(map[string]*types.StructInfo, len(p.Structs))
		for n, si := range p.Structs {
			q.Structs[n] = si
		}
	}
	for _, f := range p.Funcs {
		if f.Name == name {
			g := f.Clone()
			g.Prog = q
			q.Funcs = append(q.Funcs, g)
		} else {
			q.Funcs = append(q.Funcs, f)
		}
	}
	return q
}

// AddFunc appends a function (used by outlining).
func (p *Program) AddFunc(f *Func) {
	f.Prog = p
	p.Funcs = append(p.Funcs, f)
}

// Clone deep-copies the program (functions, blocks, locals). The struct
// table is copied too — outlining registers env structs on the clone it
// works on, and sharing the map would leak them into the original (and race
// when clones are instrumented concurrently). The StructInfo values stay
// shared: layouts are immutable after construction.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name}
	if p.Structs != nil {
		q.Structs = make(map[string]*types.StructInfo, len(p.Structs))
		for name, si := range p.Structs {
			q.Structs[name] = si
		}
	}
	for _, f := range p.Funcs {
		q.AddFunc(f.Clone())
	}
	return q
}

// Local is a function-local variable slot. Params come first; the IR builder
// introduces synthetic temporaries (Synth) for intermediate results.
type Local struct {
	Name  string
	Index int
	Type  *types.Type
	Param bool
	Synth bool // compiler temporary, not a source variable
}

func (l *Local) String() string { return l.Name }

// Func is a function body in IR form.
type Func struct {
	Name   string
	Params []*Local
	Result *types.Type
	Locals []*Local
	Blocks []*Block
	Prog   *Program
	Pos    source.Pos

	// execCache memoizes an executor-built artifact for this function (the
	// bytecode VM's compiled body). Function-level rather than program-level
	// so that programs built with CloneShared reuse the artifacts of their
	// shared functions. See Program.ExecCache for the contract.
	execCache atomic.Value
}

// ExecCode returns the memoized per-function execution artifact, or nil.
func (f *Func) ExecCode() any { return f.execCache.Load() }

// SetExecCode stores the per-function execution artifact. Concurrent
// stores race benignly: each candidate must be valid on its own, and one
// of them wins.
func (f *Func) SetExecCode(v any) { f.execCache.Store(v) }

// NewFunc creates an empty function with the given result type.
func NewFunc(name string, result *types.Type) *Func {
	return &Func{Name: name, Result: result}
}

// NewLocal appends a fresh local of the given type.
func (f *Func) NewLocal(name string, t *types.Type) *Local {
	l := &Local{Name: name, Index: len(f.Locals), Type: t}
	f.Locals = append(f.Locals, l)
	return l
}

// NewParam appends a fresh parameter local.
func (f *Func) NewParam(name string, t *types.Type) *Local {
	l := f.NewLocal(name, t)
	l.Param = true
	f.Params = append(f.Params, l)
	return l
}

// NewTemp appends a synthetic temporary.
func (f *Func) NewTemp(t *types.Type) *Local {
	l := f.NewLocal(fmt.Sprintf("t%d", len(f.Locals)), t)
	l.Synth = true
	return l
}

// NewBlock appends a fresh, empty block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Index: len(f.Blocks), Name: fmt.Sprintf("%s%d", name, len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Renumber re-assigns block indices after structural edits.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Block is a basic block: straight-line instructions plus one terminator.
// Pos, when set, is the source position that gave rise to the block (loop
// headers carry the position of their loop statement).
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
	Term   Term
	Pos    source.Pos
}

// Append adds an instruction to the block.
func (b *Block) Append(in Instr) { b.Instrs = append(b.Instrs, in) }

// ---------------------------------------------------------------- Operands

// Operand is either a local read or an immediate constant.
type Operand struct {
	Local *Local
	Const Value // used when Local == nil
}

// LocalOp makes a local-reading operand.
func LocalOp(l *Local) Operand { return Operand{Local: l} }

// ConstOp makes a constant operand.
func ConstOp(v Value) Operand { return Operand{Const: v} }

// IntOp is shorthand for an integer constant operand.
func IntOp(v int64) Operand { return ConstOp(IntVal(v)) }

// IsConst reports whether the operand is an immediate.
func (o Operand) IsConst() bool { return o.Local == nil }

func (o Operand) String() string {
	if o.Local != nil {
		return o.Local.Name
	}
	return o.Const.String()
}

// ---------------------------------------------------------------- Ops

// BinKind is a binary operator.
type BinKind int

// Binary operators. Logical &&/|| are lowered to control flow and never
// appear in IR.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	Rem
	Shl
	Shr
	BitAnd
	BitOr
	BitXor
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var binNames = [...]string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "==", "!=", "<", "<=", ">", ">="}

func (k BinKind) String() string { return binNames[k] }

// IsComparison reports whether the operator yields a bool.
func (k BinKind) IsComparison() bool { return k >= Eq }

// BinKindFromString maps a MiniC operator spelling to its BinKind.
func BinKindFromString(op string) (BinKind, bool) {
	for i, n := range binNames {
		if n == op {
			return BinKind(i), true
		}
	}
	return 0, false
}

// UnKind is a unary operator.
type UnKind int

// Unary operators.
const (
	Neg UnKind = iota
	Not
)

func (k UnKind) String() string {
	if k == Neg {
		return "-"
	}
	return "!"
}

// ---------------------------------------------------------------- Instrs

// Instr is a non-terminator instruction.
type Instr interface {
	// Def returns the defined local, or nil.
	Def() *Local
	// Uses returns the operands read by the instruction.
	Uses() []Operand
	String() string
	instr()
}

// BinOp is dst = x op y.
type BinOp struct {
	Dst  *Local
	Op   BinKind
	X, Y Operand
}

func (i *BinOp) Def() *Local     { return i.Dst }
func (i *BinOp) Uses() []Operand { return []Operand{i.X, i.Y} }
func (i *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s", i.Dst, i.X, i.Op, i.Y)
}
func (i *BinOp) instr() {}

// UnOp is dst = op x.
type UnOp struct {
	Dst *Local
	Op  UnKind
	X   Operand
}

func (i *UnOp) Def() *Local     { return i.Dst }
func (i *UnOp) Uses() []Operand { return []Operand{i.X} }
func (i *UnOp) String() string  { return fmt.Sprintf("%s = %s%s", i.Dst, i.Op, i.X) }
func (i *UnOp) instr()          {}

// Mov is dst = src.
type Mov struct {
	Dst *Local
	Src Operand
}

func (i *Mov) Def() *Local     { return i.Dst }
func (i *Mov) Uses() []Operand { return []Operand{i.Src} }
func (i *Mov) String() string  { return fmt.Sprintf("%s = %s", i.Dst, i.Src) }
func (i *Mov) instr()          {}

// Load is dst = base[index]; for struct field reads Index is the constant
// field number and FieldName names it for printing.
type Load struct {
	Dst       *Local
	Base      Operand
	Index     Operand
	FieldName string // non-empty for struct field access
}

func (i *Load) Def() *Local     { return i.Dst }
func (i *Load) Uses() []Operand { return []Operand{i.Base, i.Index} }
func (i *Load) String() string {
	if i.FieldName != "" {
		return fmt.Sprintf("%s = %s->%s", i.Dst, i.Base, i.FieldName)
	}
	return fmt.Sprintf("%s = %s[%s]", i.Dst, i.Base, i.Index)
}
func (i *Load) instr() {}

// Store is base[index] = src.
type Store struct {
	Base      Operand
	Index     Operand
	Src       Operand
	FieldName string
}

func (i *Store) Def() *Local     { return nil }
func (i *Store) Uses() []Operand { return []Operand{i.Base, i.Index, i.Src} }
func (i *Store) String() string {
	if i.FieldName != "" {
		return fmt.Sprintf("%s->%s = %s", i.Base, i.FieldName, i.Src)
	}
	return fmt.Sprintf("%s[%s] = %s", i.Base, i.Index, i.Src)
}
func (i *Store) instr() {}

// Alloc is dst = new Struct (Struct != nil) or dst = new [count]Elem.
type Alloc struct {
	Dst    *Local
	Struct *types.StructInfo
	Elem   *types.Type
	Count  Operand // arrays only
}

func (i *Alloc) Def() *Local { return i.Dst }
func (i *Alloc) Uses() []Operand {
	if i.Struct != nil {
		return nil
	}
	return []Operand{i.Count}
}
func (i *Alloc) String() string {
	if i.Struct != nil {
		return fmt.Sprintf("%s = new %s", i.Dst, i.Struct.Name)
	}
	return fmt.Sprintf("%s = new [%s]%s", i.Dst, i.Count, i.Elem)
}
func (i *Alloc) instr() {}

// Call is dst = callee(args...). Builtin marks the pure builtins.
type Call struct {
	Dst     *Local // nil for void calls
	Callee  string
	Builtin bool
	Args    []Operand
}

func (i *Call) Def() *Local     { return i.Dst }
func (i *Call) Uses() []Operand { return i.Args }
func (i *Call) String() string {
	args := make([]string, len(i.Args))
	for k, a := range i.Args {
		args[k] = a.String()
	}
	call := fmt.Sprintf("%s(%s)", i.Callee, strings.Join(args, ", "))
	if i.Dst != nil {
		return fmt.Sprintf("%s = %s", i.Dst, call)
	}
	return call
}
func (i *Call) instr() {}

// Print is the I/O side-effect marker; loops containing it are excluded
// from DCA consideration.
type Print struct {
	Args []Operand
}

func (i *Print) Def() *Local     { return nil }
func (i *Print) Uses() []Operand { return i.Args }
func (i *Print) String() string {
	args := make([]string, len(i.Args))
	for k, a := range i.Args {
		args[k] = a.String()
	}
	return fmt.Sprintf("print(%s)", strings.Join(args, ", "))
}
func (i *Print) instr() {}

// Intrinsic is a call into the DCA runtime (rt_iterator_linearize,
// rt_iterator_next, rt_verify, ...), inserted by the instrumentation pass
// and serviced by the interpreter's Runtime hook.
type Intrinsic struct {
	Dst  *Local // may be nil
	Name string
	Args []Operand
}

func (i *Intrinsic) Def() *Local     { return i.Dst }
func (i *Intrinsic) Uses() []Operand { return i.Args }
func (i *Intrinsic) String() string {
	args := make([]string, len(i.Args))
	for k, a := range i.Args {
		args[k] = a.String()
	}
	call := fmt.Sprintf("@%s(%s)", i.Name, strings.Join(args, ", "))
	if i.Dst != nil {
		return fmt.Sprintf("%s = %s", i.Dst, call)
	}
	return call
}
func (i *Intrinsic) instr() {}

// ---------------------------------------------------------------- Terms

// Term is a block terminator.
type Term interface {
	Succs() []*Block
	Uses() []Operand
	String() string
	term()
}

// If branches on a bool operand.
type If struct {
	Cond Operand
	Then *Block
	Else *Block
}

func (t *If) Succs() []*Block { return []*Block{t.Then, t.Else} }
func (t *If) Uses() []Operand { return []Operand{t.Cond} }
func (t *If) String() string {
	return fmt.Sprintf("if %s goto %s else %s", t.Cond, t.Then.Name, t.Else.Name)
}
func (t *If) term() {}

// Goto is an unconditional jump.
type Goto struct{ Target *Block }

func (t *Goto) Succs() []*Block { return []*Block{t.Target} }
func (t *Goto) Uses() []Operand { return nil }
func (t *Goto) String() string  { return "goto " + t.Target.Name }
func (t *Goto) term()           {}

// Ret returns from the function; Val is nil for void returns.
type Ret struct{ Val *Operand }

func (t *Ret) Succs() []*Block { return nil }
func (t *Ret) Uses() []Operand {
	if t.Val == nil {
		return nil
	}
	return []Operand{*t.Val}
}
func (t *Ret) String() string {
	if t.Val == nil {
		return "ret"
	}
	return "ret " + t.Val.String()
}
func (t *Ret) term() {}

// ---------------------------------------------------------------- Printing

func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Name, p.Type)
	}
	b.WriteString(")")
	if f.Result != nil && f.Result.Kind != types.Void {
		fmt.Fprintf(&b, " %s", f.Result)
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
		if blk.Term != nil {
			fmt.Fprintf(&b, "  %s\n", blk.Term)
		} else {
			b.WriteString("  <no terminator>\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (p *Program) String() string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
