// Integration tests for the sharded fleet: in-process workers on loopback
// listeners, a real coordinator, and the peer cache protocol. These live in
// an external test package because they import the server, which itself
// imports fleet.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/fleet"
	"dca/internal/irbuild"
	"dca/internal/obs"
	"dca/internal/server"
)

// fleetSrc has four loops in one function, enough for a 3-node ring to
// split the program across workers.
const fleetSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) {
		a[i] = i * 3;
	}
	var s int = 0;
	for (var i int = 0; i < 16; i++) {
		s = s + a[i];
	}
	var p int = 1;
	for (var i int = 1; i < 8; i++) {
		p = p * 2;
	}
	var b []int = new [16]int;
	for (var i int = 0; i < 16; i++) {
		b[i] = s + i;
	}
	print(s);
	print(p);
	print(b[3]);
}`

// testFleet boots n worker servers on loopback listeners with the peer
// cache wired, plus a coordinator over all of them.
type testFleet struct {
	workers []*server.Server
	cancels []context.CancelFunc
	urls    []string
	coord   *fleet.Coordinator
	cm      *fleet.Metrics
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	t.Cleanup(f.stop)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c, err := cache.Open("", 0, core.CacheRecordVersion)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{
			Workers:   2,
			Cache:     c,
			PeerNodes: f.urls,
			PeerSelf:  f.urls[i],
		})
		ctx, cancel := context.WithCancel(context.Background())
		f.workers = append(f.workers, srv)
		f.cancels = append(f.cancels, cancel)
		ln := listeners[i]
		go srv.Serve(ctx, ln)
	}
	reg := obs.NewRegistry()
	f.coord = fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: f.urls})
	f.cm = fleet.NewMetrics(reg, f.coord.Ring())
	f.coord.SetMetrics(f.cm)
	return f
}

func (f *testFleet) kill(i int) {
	if f.cancels[i] != nil {
		f.cancels[i]()
		f.cancels[i] = nil
	}
}

func (f *testFleet) stop() {
	for i := range f.cancels {
		f.kill(i)
	}
}

// analyze runs fleetSrc through the coordinator and renders the verdict
// table: every deterministic per-loop field, nothing timing-dependent.
func (f *testFleet) analyze(t *testing.T) (*core.ReportJSON, string) {
	t.Helper()
	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, nil)
	if err != nil {
		t.Fatalf("coordinator analyze: %v", err)
	}
	return rep, renderTable(rep)
}

func renderTable(rep *core.ReportJSON) string {
	var b strings.Builder
	for _, l := range rep.Loops {
		fmt.Fprintf(&b, "%s #%d %s %s\n", l.Fn, l.Index, l.Verdict, l.Reason)
	}
	return b.String()
}

// TestFleetIdentity: a 3-node fleet renders the byte-identical verdict
// table a single node does, and the loops really were sharded.
func TestFleetIdentity(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)
	if want == "" {
		t.Fatal("reference table is empty")
	}

	f := newTestFleet(t, 3)
	rep, got := f.analyze(t)
	if got != want {
		t.Errorf("3-node table diverged from single node:\n--- single ---\n%s--- fleet ---\n%s", want, got)
	}
	if len(rep.Loops) < 4 {
		t.Fatalf("expected at least 4 loops, got %d", len(rep.Loops))
	}
	dispatched := 0
	for _, node := range f.urls {
		if f.cm.Dispatches.Value(node) > 0 {
			dispatched++
		}
	}
	if dispatched < 2 {
		t.Errorf("only %d nodes received a batch; program was not sharded", dispatched)
	}
}

// TestFleetDeadWorkerRedispatch: with one worker dead, its shard
// re-dispatches to ring successors and the merged table stays identical.
func TestFleetDeadWorkerRedispatch(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)

	f := newTestFleet(t, 3)
	f.kill(2)
	time.Sleep(10 * time.Millisecond) // let the listener close
	_, got := f.analyze(t)
	if got != want {
		t.Errorf("table with a dead worker diverged:\n--- single ---\n%s--- fleet ---\n%s", want, got)
	}
}

// TestFleetKillMidRun: a worker dies while the suite is in flight — the
// OnLoop callback kills one node after the first verdict lands — and the
// coordinator still merges the identical table via at-least-once
// re-dispatch.
func TestFleetKillMidRun(t *testing.T) {
	single := newTestFleet(t, 1)
	_, want := single.analyze(t)

	f := newTestFleet(t, 3)
	prog, err := irbuild.Compile("fleet.mc", fleetSrc)
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	onLoop := func(core.LoopJSON) {
		if !killed {
			killed = true
			f.kill(1)
		}
	}
	rep, err := f.coord.Analyze(context.Background(), prog, "fleet.mc", fleetSrc, fleet.Knobs{Schedules: 1}, onLoop)
	if err != nil {
		t.Fatalf("coordinator analyze with mid-run kill: %v", err)
	}
	if got := renderTable(rep); got != want {
		t.Errorf("table after mid-run kill diverged:\n--- single ---\n%s--- fleet ---\n%s", want, got)
	}
	if !killed {
		t.Fatal("OnLoop never fired; kill path untested")
	}
}

// TestFleetPeerCacheCompounding: after one coordinator pass populated each
// worker's shard, re-analyzing the whole program directly against any
// single worker is served entirely from cache — its own shard locally, the
// rest via peer consults — with zero replays.
func TestFleetPeerCacheCompounding(t *testing.T) {
	f := newTestFleet(t, 3)
	rep, _ := f.analyze(t)
	total := len(rep.Loops)

	for i, url := range f.urls {
		body, _ := json.Marshal(map[string]any{
			"filename": "fleet.mc", "source": fleetSrc, "schedules": 1,
		})
		resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		var ar server.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("worker %d: decode: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ar.Report == nil {
			t.Fatalf("worker %d: status %d, report %v", i, resp.StatusCode, ar.Report)
		}
		if ar.Report.CachedLoops != total {
			t.Errorf("worker %d: %d/%d loops cached; peer cache did not compound", i, ar.Report.CachedLoops, total)
		}
		if ar.Report.Replays != 0 {
			t.Errorf("worker %d: %d replays on a fully cached program", i, ar.Report.Replays)
		}
	}
	var hits uint64
	for _, w := range f.workers {
		if m := w.FleetMetrics(); m != nil {
			hits += m.PeerHits.Value()
		}
	}
	if hits == 0 {
		t.Error("no peer hits recorded; workers answered from local caches only")
	}
}

// TestPeerCacheCorruption: a peer serving garbage — invalid JSON, oversized
// bodies, or 500s — degrades to a local miss, never an error, and the
// corruption is counted.
func TestPeerCacheCorruption(t *testing.T) {
	responses := map[string]func(w http.ResponseWriter){
		"notjson": func(w http.ResponseWriter) { fmt.Fprint(w, "{{{ not json") },
		"huge": func(w http.ResponseWriter) {
			w.Write(bytes.Repeat([]byte("a"), fleet.MaxPeerRecord+1))
		},
		"boom": func(w http.ResponseWriter) { w.WriteHeader(http.StatusInternalServerError) },
	}
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(r.URL.Path, "/")
		key := parts[len(parts)-1]
		for tag, h := range responses {
			if strings.HasPrefix(key, keyFor(tag)) {
				h(w)
				return
			}
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer evil.Close()

	local, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	const self = "http://self.invalid"
	ring := fleet.NewRing([]string{self, evil.URL})
	m := fleet.NewMetrics(reg, ring)
	pc := fleet.NewPeerCache(fleet.PeerConfig{Local: local, Ring: ring, Self: self, Metrics: m})

	for tag := range responses {
		key := ownedKey(t, ring, evil.URL, tag)
		if val, ok := pc.Get(key); ok {
			t.Errorf("%s: corrupt peer record surfaced as a hit: %q", tag, val)
		}
	}
	if m.PeerErrors.Value() == 0 {
		t.Error("no peer errors counted for corrupt responses")
	}

	// A clean 404 from the peer is a miss, not an error.
	before := m.PeerErrors.Value()
	if _, ok := pc.Get(ownedKey(t, ring, evil.URL, "absent")); ok {
		t.Error("404 from peer surfaced as a hit")
	}
	if m.PeerErrors.Value() != before {
		t.Error("404 from peer counted as an error, want miss")
	}

	// Put never fails even when the write-through target is down: local
	// insert still happens.
	pc.Put(ownedKey(t, ring, evil.URL, "boom"), []byte(`{"v":1}`))
	if _, ok := local.Get(ownedKey(t, ring, evil.URL, "boom")); !ok {
		t.Error("write-through failure dropped the local insert")
	}
}

// keyFor derives a valid hex cache-key prefix from a tag so the evil peer
// can tell which behavior a request wants.
func keyFor(tag string) string {
	return fmt.Sprintf("%x", tag)
}

// ownedKey finds a valid cache key with the tag's hex prefix that the ring
// routes to the given owner.
func ownedKey(t *testing.T, ring *fleet.Ring, owner, tag string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%s%04x", keyFor(tag), i)
		if ring.Owner(key, nil) == owner {
			return key
		}
	}
	t.Fatalf("no key with prefix %q routes to %s", tag, owner)
	return ""
}
