package fuzzgen

import (
	"fmt"
	"strings"
)

// Render assembles the program spec into MiniC source. The renderer is a
// pure function of the spec: identical specs produce byte-identical
// source. Every labeled loop lives alone in its own function (IterNested
// contributes the function's two loops, outer and inner, both labeled);
// main owns the unlabeled scaffolding — allocations, worklist permutation
// fills, list builds, and the checksum folds that keep every result
// live-out all the way to program output.
func (p *Program) Render() string {
	var decls, setups, calls, consumes strings.Builder
	needNode := false
	for i := range p.Loops {
		l := &p.Loops[i]
		if l.Iter == IterList {
			needNode = true
		}
		r := renderLoop(l)
		decls.WriteString(r.decl)
		setups.WriteString(r.setup)
		calls.WriteString(r.call)
		consumes.WriteString(r.consume)
	}
	var b strings.Builder
	if needNode {
		b.WriteString("struct FzNode { val int; next *FzNode; }\n")
	}
	b.WriteString(decls.String())
	b.WriteString("func main() {\n")
	b.WriteString(setups.String())
	b.WriteString("\tvar check int = 0;\n")
	b.WriteString(calls.String())
	b.WriteString(consumes.String())
	b.WriteString("\tprint(check);\n}\n")
	return b.String()
}

// rendered is the per-loop source contribution.
type rendered struct {
	decl    string // the loop function
	setup   string // main-side allocations and fills
	call    string // main-side invocation (folding a return into check)
	consume string // main-side checksum folds over written arrays/lists
}

// payloadNeeds describes what a payload consumes from its surroundings.
type payloadNeeds struct {
	array  bool   // an []int of Elements() cells, param "a"
	histo  bool   // an []int of Mod cells, param "h"
	alias  bool   // a second alias param "b" of the same array
	scalar string // accumulator declaration, or ""
	ret    string // return expression, or ""
}

func needsOf(l *LoopSpec) payloadNeeds {
	switch l.Payload {
	case PayDisjointWrite, PayScatterInj, PayFirstWrite, PayRecurrence, PayModWrite:
		return payloadNeeds{array: true}
	case PayAliasedWrite:
		return payloadNeeds{array: true, alias: true}
	case PayHistogram:
		return payloadNeeds{histo: true}
	case PaySumReduce:
		return payloadNeeds{scalar: "\tvar s int = 0;\n", ret: "s"}
	case PayProdReduce:
		return payloadNeeds{scalar: "\tvar s int = 1;\n", ret: "s"}
	case PayOrderedFold:
		return payloadNeeds{scalar: "\tvar s int = 0;\n", ret: "s"}
	case PayMinMax:
		return payloadNeeds{scalar: "\tvar m int = 0;\n", ret: "m"}
	case PayFloatSum:
		return payloadNeeds{scalar: "\tvar f float = 0.0;\n", ret: "int(f * 100000000.0)"}
	}
	return payloadNeeds{} // PayPure, PayIOPrint
}

// payloadStmts renders the payload for array-context iterators (range,
// worklist, nested), where `i` holds the element id in [0, n) and `n` is
// the element count. pos is the positional induction variable for
// order-weighted folds ("i" for ranges, "k" for worklists — the fold must
// weight by position, not by data, for its label argument to hold).
func payloadStmts(l *LoopSpec, indent, pos string) string {
	ind := indent
	var b strings.Builder
	if l.Noise {
		fmt.Fprintf(&b, "%svar nz int = (i + %d) * 2;\n%snz = nz %% 7;\n", ind, l.K1, ind)
	}
	switch l.Payload {
	case PayPure:
		fmt.Fprintf(&b, "%svar t int = i * %d + %d;\n%st = (t * t) %% 101;\n", ind, l.K1, l.K2, ind)
	case PayDisjointWrite:
		fmt.Fprintf(&b, "%sa[i] = i * %d + %d;\n", ind, l.K1, l.K2)
	case PaySumReduce:
		fmt.Fprintf(&b, "%ss += (i * %d + %d) %% 13;\n", ind, l.K1, l.K2)
	case PayProdReduce:
		fmt.Fprintf(&b, "%ss *= (i %% 5) * 2 + 1;\n", ind)
	case PayMinMax:
		fmt.Fprintf(&b, "%svar v int = (i * %d + %d) %% 97;\n%sif (v > m) { m = v; }\n", ind, l.K1, l.K2, ind)
	case PayHistogram:
		fmt.Fprintf(&b, "%sh[i %% %d] += i %% 3 + 1;\n", ind, l.Mod)
	case PayScatterInj:
		fmt.Fprintf(&b, "%sa[(i * %d) %% n] = i * %d + %d;\n", ind, l.Stride, l.K1, l.K2)
	case PayOrderedFold:
		fmt.Fprintf(&b, "%ss = s * 3 + %s + 1;\n", ind, pos)
	case PayFirstWrite:
		fmt.Fprintf(&b, "%sif (a[i / 2] == 0) { a[i / 2] = i + %d; }\n", ind, l.K2)
	case PayRecurrence:
		fmt.Fprintf(&b, "%sa[i] = a[i - 1] + i %% 9 + 1;\n", ind)
	case PayAliasedWrite:
		fmt.Fprintf(&b, "%sa[i] = i * %d + 1;\n%sb[n - 1 - i] = i * %d + 2;\n", ind, l.K1, ind, l.K2)
	case PayIOPrint:
		fmt.Fprintf(&b, "%sif (i %% 8 == 0) { print(i + %d); }\n", ind, l.K2)
	case PayFloatSum:
		fmt.Fprintf(&b, "%sf += 1.0 / float((i %% 17) * (i %% 17) + 1);\n", ind)
	case PayModWrite:
		fmt.Fprintf(&b, "%sa[(i * i + %d) %% n] = i + %d;\n", ind, l.K1, l.K2)
	default:
		panic(fmt.Sprintf("fuzzgen: unrendered payload %v", l.Payload))
	}
	return b.String()
}

// listPayloadStmts renders the payload for the linked-list iterator, where
// `p` walks the list and p->val holds the element id. The build in main
// pushes front, so traversal visits strictly decreasing values — which is
// what makes the ordered fold's label argument (strict rearrangement
// inequality) hold on lists too.
func listPayloadStmts(l *LoopSpec, ind string) string {
	var b strings.Builder
	if l.Noise {
		fmt.Fprintf(&b, "%svar nz int = (p->val + %d) * 2;\n%snz = nz %% 7;\n", ind, l.K1, ind)
	}
	switch l.Payload {
	case PayPure:
		fmt.Fprintf(&b, "%svar t int = p->val * %d + %d;\n%st = (t * t) %% 101;\n", ind, l.K1, l.K2, ind)
	case PayDisjointWrite:
		fmt.Fprintf(&b, "%sp->val = p->val * %d + %d;\n", ind, l.K1, l.K2)
	case PaySumReduce:
		fmt.Fprintf(&b, "%ss += (p->val * %d + %d) %% 13;\n", ind, l.K1, l.K2)
	case PayProdReduce:
		fmt.Fprintf(&b, "%ss *= (p->val %% 5) * 2 + 1;\n", ind)
	case PayMinMax:
		fmt.Fprintf(&b, "%svar v int = (p->val * %d + %d) %% 97;\n%sif (v > m) { m = v; }\n", ind, l.K1, l.K2, ind)
	case PayOrderedFold:
		fmt.Fprintf(&b, "%ss = s * 3 + p->val + 1;\n", ind)
	case PayIOPrint:
		fmt.Fprintf(&b, "%sif (p->val %% 8 == 0) { print(p->val + %d); }\n", ind, l.K2)
	case PayFloatSum:
		fmt.Fprintf(&b, "%sf += 1.0 / float((p->val %% 17) * (p->val %% 17) + 1);\n", ind)
	default:
		panic(fmt.Sprintf("fuzzgen: payload %v incompatible with list iterator", l.Payload))
	}
	return b.String()
}

func renderLoop(l *LoopSpec) rendered {
	need := needsOf(l)
	fn := l.FnName()
	s := l.Seq
	n := l.Elements()
	var r rendered

	// Main-side storage.
	arr := fmt.Sprintf("a%d", s)
	var params, args []string
	switch {
	case need.array:
		r.setup += fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, n)
		params = append(params, "a []int")
		args = append(args, arr)
		if need.alias {
			params = append(params, "b []int")
			args = append(args, arr)
		}
		r.consume += consumeArray(arr, s, n)
	case need.histo:
		arr = fmt.Sprintf("h%d", s)
		r.setup += fmt.Sprintf("\tvar %s []int = new [%d]int;\n", arr, l.Mod)
		params = append(params, "h []int")
		args = append(args, arr)
		r.consume += consumeArray(arr, s, l.Mod)
	}

	// The function body around the payload, per iterator shape.
	var body, ret string
	if need.ret != "" {
		ret = " int"
	}
	switch l.Iter {
	case IterRangeUp, IterRangeDown, IterWorklist:
		if l.Iter == IterWorklist {
			w := fmt.Sprintf("w%d", s)
			r.setup += fmt.Sprintf("\tvar %s []int = new [%d]int;\n", w, n)
			r.setup += fmt.Sprintf("\tfor (var j%d int = 0; j%d < %d; j%d++) { %s[j%d] = (j%d * %d + %d) %% %d; }\n",
				s, s, n, s, w, s, s, l.Stride, l.K2, n)
			params = append([]string{"w []int"}, params...)
			args = append([]string{w}, args...)
		}
		params = append(params, "n int")
		args = append(args, fmt.Sprint(n))
		body = need.scalar
		switch l.Iter {
		case IterRangeUp:
			start := "0"
			if l.Payload == PayRecurrence {
				start = "1" // a[i-1] must stay in bounds
			}
			body += fmt.Sprintf("\tfor (var i int = %s; i < n; i++) {\n%s\t}\n",
				start, payloadStmts(l, "\t\t", "i"))
		case IterRangeDown:
			body += fmt.Sprintf("\tfor (var i int = n - 1; i >= 0; i--) {\n%s\t}\n",
				payloadStmts(l, "\t\t", "n - 1 - i"))
		case IterWorklist:
			body += fmt.Sprintf("\tfor (var k int = 0; k < n; k++) {\n\t\tvar i int = w[k];\n%s\t}\n",
				payloadStmts(l, "\t\t", "k"))
		}
	case IterNested:
		params = append(params, "r int", "c int")
		args = append(args, fmt.Sprint(l.Trip), fmt.Sprint(l.Inner))
		body = need.scalar
		body += fmt.Sprintf("\tfor (var x int = 0; x < r; x++) {\n"+
			"\t\tfor (var y int = 0; y < c; y++) {\n"+
			"\t\t\tvar i int = x * c + y;\n%s\t\t}\n\t}\n",
			payloadStmts(l, "\t\t\t", "i"))
		// Array payloads index with n = r*c; bind it as a local so the
		// payload text is iterator-independent.
		if need.array || l.Payload == PayModWrite {
			body = strings.Replace(body, "\tfor (var x", fmt.Sprintf("\tvar n int = %d;\n\tfor (var x", n), 1)
		}
	case IterList:
		hd := fmt.Sprintf("hd%d", s)
		r.setup += fmt.Sprintf("\tvar %s *FzNode = nil;\n", hd)
		r.setup += fmt.Sprintf("\tfor (var j%d int = 0; j%d < %d; j%d++) {\n"+
			"\t\tvar nd%d *FzNode = new FzNode;\n\t\tnd%d->val = j%d;\n\t\tnd%d->next = %s;\n\t\t%s = nd%d;\n\t}\n",
			s, s, n, s, s, s, s, s, hd, hd, s)
		params = append(params, "head *FzNode")
		args = append(args, hd)
		body = need.scalar
		body += fmt.Sprintf("\tvar p *FzNode = head;\n\twhile (p != nil) {\n%s\t\tp = p->next;\n\t}\n",
			listPayloadStmts(l, "\t\t"))
		r.consume += fmt.Sprintf("\tvar p%d *FzNode = %s;\n\twhile (p%d != nil) { check += p%d->val; p%d = p%d->next; }\n",
			s, hd, s, s, s, s)
	default:
		panic(fmt.Sprintf("fuzzgen: unrendered iterator %v", l.Iter))
	}

	retStmt := ""
	if need.ret != "" {
		retStmt = fmt.Sprintf("\treturn %s;\n", need.ret)
	}
	r.decl = fmt.Sprintf("func %s(%s)%s {\n%s%s}\n", fn, strings.Join(params, ", "), ret, body, retStmt)
	if need.ret != "" {
		r.call = fmt.Sprintf("\tcheck += %s(%s);\n", fn, strings.Join(args, ", "))
	} else {
		r.call = fmt.Sprintf("\t%s(%s);\n", fn, strings.Join(args, ", "))
	}
	return r
}

// consumeArray folds every cell of a main-side array into the checksum —
// a full sweep, not point reads, so divergent cells anywhere surface in
// program output (the parallel oracle compares output, not heap).
func consumeArray(name string, seq, n int) string {
	return fmt.Sprintf("\tfor (var q%d int = 0; q%d < %d; q%d++) { check += %s[q%d]; }\n",
		seq, seq, n, seq, name, seq)
}
