package interp_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dca/internal/core"
	"dca/internal/interp"
	"dca/internal/irbuild"
)

var update = flag.Bool("update", false, "rewrite golden .out files")

// TestGoldenCorpus compiles and runs every testdata program and compares
// its output against the checked-in golden file (regenerate with
// `go test ./internal/interp -run TestGoldenCorpus -update`). The corpus
// doubles as an end-to-end regression net for the whole frontend.
func TestGoldenCorpus(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			text, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irbuild.Compile(src, string(text))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var out strings.Builder
			if _, err := interp.Run(prog, interp.Config{Out: &out}); err != nil {
				t.Fatalf("run: %v", err)
			}
			golden := strings.TrimSuffix(src, ".mc") + ".out"
			if *update {
				if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", out.String(), want)
			}
		})
	}
}

// TestGoldenCorpusDeterministic runs each program twice and demands
// identical outputs and step counts — the determinism the DCA dynamic
// stage depends on.
func TestGoldenCorpusDeterministic(t *testing.T) {
	srcs, _ := filepath.Glob(filepath.Join("testdata", "*.mc"))
	for _, src := range srcs {
		text, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := irbuild.Compile(src, string(text))
		if err != nil {
			t.Fatal(err)
		}
		var out1, out2 strings.Builder
		r1, err := interp.Run(prog, interp.Config{Out: &out1})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(prog, interp.Config{Out: &out2})
		if err != nil {
			t.Fatal(err)
		}
		if out1.String() != out2.String() || r1.Steps != r2.Steps {
			t.Errorf("%s: non-deterministic execution (%d vs %d steps)", src, r1.Steps, r2.Steps)
		}
	}
}

// TestGoldenCorpusUnderDCA runs the whole analysis over every corpus
// program: no crashes, and the instrumented golden runs must reproduce the
// program output for every loop the pipeline can transform.
func TestGoldenCorpusUnderDCA(t *testing.T) {
	srcs, _ := filepath.Glob(filepath.Join("testdata", "*.mc"))
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			text, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irbuild.Compile(src, string(text))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Analyze(prog, core.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			for _, l := range rep.Loops {
				if l.Verdict == core.Failed {
					t.Errorf("%s: pipeline failure: %s", l.ID, l.Reason)
				}
			}
		})
	}
}
