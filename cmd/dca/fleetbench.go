package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"dca/internal/cache"
	"dca/internal/chaos"
	"dca/internal/core"
	"dca/internal/fleet"
	"dca/internal/irbuild"
	"dca/internal/obs"
	"dca/internal/server"
	"dca/internal/workloads/npb"
)

// fleetBlock is the "fleet" record merged into BENCH_analysis.json.
type fleetBlock struct {
	Nodes           int     `json:"nodes"`
	Loops           int     `json:"loops"`
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	FailoverSeconds float64 `json:"failover_seconds"`
	WarmReplays     int     `json:"warm_replays"`
	PeerHits        uint64  `json:"peer_hits"`
	PeerMisses      uint64  `json:"peer_misses"`
	PeerErrors      uint64  `json:"peer_errors"`
	PeerHitRate     float64 `json:"peer_hit_rate"`
	Redispatches    uint64  `json:"redispatches"`
	Identical       bool    `json:"identical"`
	GoVersion       string  `json:"go_version"`
}

// cmdFleetBench measures the sharded fleet on the NPB-inspired suite: it
// boots N in-process workers on loopback listeners with the peer cache
// enabled, runs the suite through a coordinator cold and warm, kills one
// worker and runs a failover pass, and asserts every pass renders the
// same verdict table a single node does. The numbers land in the "fleet"
// block of BENCH_analysis.json.
func cmdFleetBench(args []string) error {
	fs := flag.NewFlagSet("fleet-bench", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "fleet size")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "engine workers per node")
	benchOut := fs.String("bench-out", "BENCH_analysis.json", "merge the \"fleet\" block into this JSON file (empty = skip)")
	chaosMode := fs.Bool("chaos", false, "run the network-chaos leg instead: seeded fault injection, kill/restart recovery, and an all-workers-dead fallback pass (merges the \"fleet_chaos\" block)")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos leg: fault-injection seed")
	chaosProb := fs.Float64("chaos-prob", 0.2, "chaos leg: per-request fault probability")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet-bench: unexpected arguments %q", fs.Args())
	}
	if *nodes < 2 {
		return fmt.Errorf("fleet-bench: -nodes must be >= 2 (the single-node reference is built in)")
	}
	ctx := context.Background()

	// Single-node reference: the verdict table every fleet pass must match.
	single, err := newBenchFleet(ctx, 1, *jobs)
	if err != nil {
		return fmt.Errorf("fleet-bench: %w", err)
	}
	defer single.stop()
	refTable, _, _, err := single.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: reference suite: %w", err)
	}
	single.stop()

	if *chaosMode {
		return chaosBench(ctx, refTable, *nodes, *jobs, *chaosSeed, *chaosProb, *benchOut)
	}

	fl, err := newBenchFleet(ctx, *nodes, *jobs)
	if err != nil {
		return fmt.Errorf("fleet-bench: %w", err)
	}
	defer fl.stop()

	coldTable, coldDur, coldLoops, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: cold suite: %w", err)
	}
	warmTable, warmDur, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: warm suite: %w", err)
	}
	warmReplays := fl.lastReplays

	// Failover: kill the last worker and run the suite again. The
	// coordinator must re-dispatch its shard to the ring successors and
	// still render the identical table.
	fl.kill(*nodes - 1)
	failTable, failDur, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: failover suite: %w", err)
	}

	identical := coldTable == refTable && warmTable == refTable && failTable == refTable

	// Every worker's registry counts, including the killed one: its peer
	// traffic happened while it was alive.
	var hits, misses, errs uint64
	for _, w := range fl.workers {
		if m := w.FleetMetrics(); m != nil {
			hits += m.PeerHits.Value()
			misses += m.PeerMisses.Value()
			errs += m.PeerErrors.Value()
		}
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	block := fleetBlock{
		Nodes:           *nodes,
		Loops:           coldLoops,
		ColdSeconds:     coldDur.Seconds(),
		WarmSeconds:     warmDur.Seconds(),
		FailoverSeconds: failDur.Seconds(),
		WarmReplays:     warmReplays,
		PeerHits:        hits,
		PeerMisses:      misses,
		PeerErrors:      errs,
		PeerHitRate:     hitRate,
		Redispatches:    fl.cm.Redispatches.Value(),
		Identical:       identical,
		GoVersion:       runtime.Version(),
	}
	fmt.Printf("fleet-bench: %d nodes, %d loops\n", block.Nodes, block.Loops)
	fmt.Printf("  cold %.2fs  warm %.2fs  failover %.2fs\n", block.ColdSeconds, block.WarmSeconds, block.FailoverSeconds)
	fmt.Printf("  warm replays %d  peer hits %d / misses %d / errors %d (hit rate %.2f)\n",
		block.WarmReplays, block.PeerHits, block.PeerMisses, block.PeerErrors, block.PeerHitRate)
	fmt.Printf("  re-dispatches %d  tables identical to single node: %v\n", block.Redispatches, block.Identical)
	if *benchOut != "" {
		if err := mergeBenchBlock(*benchOut, "fleet", block); err != nil {
			return fmt.Errorf("fleet-bench: %w", err)
		}
	}
	if !identical {
		return fmt.Errorf("fleet-bench: fleet verdict tables diverged from the single-node reference")
	}
	return nil
}

// fleetChaosBlock is the "fleet_chaos" record merged into
// BENCH_analysis.json by `fleet-bench -chaos`.
type fleetChaosBlock struct {
	Nodes           int     `json:"nodes"`
	Loops           int     `json:"loops"`
	Seed            int64   `json:"seed"`
	FaultProb       float64 `json:"fault_prob"`
	FaultsInjected  int64   `json:"faults_injected"`
	ChaosSeconds    float64 `json:"chaos_seconds"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	BlackoutSeconds float64 `json:"blackout_seconds"`
	NodeRetries     uint64  `json:"node_retries"`
	Hedges          uint64  `json:"hedges"`
	HedgeWins       uint64  `json:"hedge_wins"`
	Redispatches    uint64  `json:"redispatches"`
	Rejoins         uint64  `json:"rejoins"`
	FallbackRuns    uint64  `json:"fallback_runs"`
	FallbackLoops   uint64  `json:"fallback_loops"`
	Identical       bool    `json:"identical"`
	GoVersion       string  `json:"go_version"`
}

// chaosBench is the `fleet-bench -chaos` leg: the suite runs through a
// coordinator whose dispatch transport injects seeded network faults,
// then through a kill-then-restart recovery (timing the prober's
// re-admission), then with every worker dead (the local fallback). Every
// pass must render the single-node reference table byte-for-byte.
func chaosBench(ctx context.Context, refTable string, nodes, jobs int, seed int64, prob float64, benchOut string) error {
	fl, err := newBenchFleet(ctx, nodes, jobs)
	if err != nil {
		return fmt.Errorf("fleet-bench: %w", err)
	}
	defer fl.stop()

	// Faults hit dispatches only: health probes stay clean so recovery
	// timing measures the prober, not the injector.
	nc := chaos.NewNetChaos(nil, seed, prob)
	nc.Only = func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/analyze") }
	reg := obs.NewRegistry()
	pctx, cancelProber := context.WithCancel(ctx)
	defer cancelProber()
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Nodes:  fl.urls,
		Client: &http.Client{Transport: nc},
		Policy: fleet.Policy{
			DispatchTimeout: 2 * time.Minute,
			NodeRetries:     2,
			HedgeAfter:      400 * time.Millisecond,
			ProbeInterval:   100 * time.Millisecond,
			RetryBase:       10 * time.Millisecond,
			RetryCap:        250 * time.Millisecond,
			MaxRetryAfter:   250 * time.Millisecond,
		},
		Local: fleet.NewLocalAnalyzer(fleet.LocalConfig{Workers: jobs}),
	})
	cm := fleet.NewMetrics(reg, coord.Ring())
	coord.SetMetrics(cm)
	coord.StartProber(pctx)
	fl.coord, fl.cm = coord, cm

	chaosTable, chaosDur, chaosLoops, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: chaos suite: %w", err)
	}

	// Kill the last worker, run a pass so the coordinator suspects it, then
	// restart it on the same address and time the prober's re-admission.
	victim := nodes - 1
	fl.kill(victim)
	killTable, _, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: killed-worker suite: %w", err)
	}
	if err := fl.restart(ctx, victim, jobs); err != nil {
		return fmt.Errorf("fleet-bench: restart worker: %w", err)
	}
	rejoinStart := time.Now()
	for coord.Membership().State(fl.urls[victim]) != fleet.NodeLive {
		if time.Since(rejoinStart) > 30*time.Second {
			return fmt.Errorf("fleet-bench: restarted worker %s never rejoined", fl.urls[victim])
		}
		time.Sleep(10 * time.Millisecond)
	}
	recovery := time.Since(rejoinStart)
	rejoinTable, _, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: rejoined suite: %w", err)
	}

	// Blackout: every worker dead. The coordinator must finish the suite
	// in-process through the local fallback.
	fl.stop()
	blackStart := time.Now()
	blackTable, _, _, err := fl.runSuite(ctx)
	if err != nil {
		return fmt.Errorf("fleet-bench: blackout suite: %w", err)
	}
	blackDur := time.Since(blackStart)

	identical := chaosTable == refTable && killTable == refTable &&
		rejoinTable == refTable && blackTable == refTable
	block := fleetChaosBlock{
		Nodes:           nodes,
		Loops:           chaosLoops,
		Seed:            seed,
		FaultProb:       prob,
		FaultsInjected:  nc.Faults(),
		ChaosSeconds:    chaosDur.Seconds(),
		RecoverySeconds: recovery.Seconds(),
		BlackoutSeconds: blackDur.Seconds(),
		NodeRetries:     cm.NodeRetries.Value(),
		Hedges:          cm.Hedges.Value(),
		HedgeWins:       cm.HedgeWins.Value(),
		Redispatches:    cm.Redispatches.Value(),
		Rejoins:         cm.Rejoins.Value(),
		FallbackRuns:    cm.FallbackRuns.Value(),
		FallbackLoops:   cm.FallbackLoops.Value(),
		Identical:       identical,
		GoVersion:       runtime.Version(),
	}
	fmt.Printf("fleet-bench -chaos: %d nodes, %d loops, seed %d, fault prob %.2f\n",
		block.Nodes, block.Loops, block.Seed, block.FaultProb)
	fmt.Printf("  chaos %.2fs (%d faults injected)  recovery %.3fs  blackout %.2fs\n",
		block.ChaosSeconds, block.FaultsInjected, block.RecoverySeconds, block.BlackoutSeconds)
	fmt.Printf("  retries %d  hedges %d (wins %d)  re-dispatches %d  rejoins %d\n",
		block.NodeRetries, block.Hedges, block.HedgeWins, block.Redispatches, block.Rejoins)
	fmt.Printf("  fallback runs %d covering %d loops  tables identical to single node: %v\n",
		block.FallbackRuns, block.FallbackLoops, block.Identical)
	if benchOut != "" {
		if err := mergeBenchBlock(benchOut, "fleet_chaos", block); err != nil {
			return fmt.Errorf("fleet-bench: %w", err)
		}
	}
	if !identical {
		return fmt.Errorf("fleet-bench: chaos verdict tables diverged from the single-node reference")
	}
	return nil
}

// benchFleet is an in-process fleet: N worker servers on loopback
// listeners, each with a memory-only verdict cache wrapped in the peer
// protocol, and one coordinator routing over all of them.
type benchFleet struct {
	workers     []*server.Server
	cancels     []context.CancelFunc
	urls        []string
	coord       *fleet.Coordinator
	cm          *fleet.Metrics
	lastReplays int
}

func newBenchFleet(ctx context.Context, n, jobs int) (*benchFleet, error) {
	f := &benchFleet{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.stop()
			return nil, err
		}
		listeners[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c, err := cache.Open("", 0, core.CacheRecordVersion)
		if err != nil {
			f.stop()
			return nil, err
		}
		cfg := server.Config{
			Workers:   jobs,
			Cache:     c,
			PeerNodes: f.urls,
			PeerSelf:  f.urls[i],
		}
		srv := server.New(cfg)
		wctx, cancel := context.WithCancel(ctx)
		f.workers = append(f.workers, srv)
		f.cancels = append(f.cancels, cancel)
		go srv.Serve(wctx, listeners[i])
	}
	reg := obs.NewRegistry()
	f.coord = fleet.NewCoordinator(fleet.CoordinatorConfig{Nodes: f.urls})
	f.cm = fleet.NewMetrics(reg, f.coord.Ring())
	f.coord.SetMetrics(f.cm)
	return f, nil
}

// kill shuts one worker down; its listener closes, so subsequent
// dispatches and peer lookups fail over.
func (f *benchFleet) kill(i int) {
	if i < len(f.cancels) && f.cancels[i] != nil {
		f.cancels[i]()
		f.cancels[i] = nil
	}
}

// restart boots a fresh worker on a killed slot's original address (the
// ring routes by URL, so the address must be reused). The old listener
// needs a moment to release the port after its drain.
func (f *benchFleet) restart(ctx context.Context, i, jobs int) error {
	addr := strings.TrimPrefix(f.urls[i], "http://")
	var ln net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		ln.Close()
		return err
	}
	srv := server.New(server.Config{
		Workers:   jobs,
		Cache:     c,
		PeerNodes: f.urls,
		PeerSelf:  f.urls[i],
	})
	wctx, cancel := context.WithCancel(ctx)
	f.workers[i] = srv
	f.cancels[i] = cancel
	go srv.Serve(wctx, ln)
	return nil
}

func (f *benchFleet) stop() {
	for i := range f.cancels {
		f.kill(i)
	}
}

// runSuite pushes every NPB spec through the coordinator and renders the
// verdict table: one line per loop with function, index, verdict, and
// reason — everything deterministic, nothing timing- or
// provenance-dependent — so tables compare byte-for-byte across fleet
// sizes and cache states.
func (f *benchFleet) runSuite(ctx context.Context) (table string, dur time.Duration, loops int, err error) {
	start := time.Now()
	var b strings.Builder
	f.lastReplays = 0
	for _, spec := range npb.Specs() {
		src := spec.Source()
		name := spec.Name + ".mc"
		prog, err := irbuild.Compile(name, src)
		if err != nil {
			return "", 0, 0, fmt.Errorf("%s: compile: %w", spec.Name, err)
		}
		rep, err := f.coord.Analyze(ctx, prog, name, src, fleet.Knobs{Schedules: 1}, nil)
		if err != nil {
			return "", 0, 0, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, l := range rep.Loops {
			fmt.Fprintf(&b, "%s %-40s #%-3d %-18s %s\n", spec.Name, l.Fn, l.Index, l.Verdict, l.Reason)
			loops++
		}
		f.lastReplays += rep.Replays
	}
	return b.String(), time.Since(start), loops, nil
}

// mergeBenchBlock read-modify-writes one top-level block of the bench
// JSON file, leaving every other section untouched.
func mergeBenchBlock(path, key string, block any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(block)
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
