package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dca/internal/core"
	"dca/internal/fleet"
)

// fleetSmokeSrc: one quick loop first in source order (so the event stream
// produces its first verdict early) followed by three slow loops, so a
// worker killed after the first event dies with its shard still in flight.
const fleetSmokeSrc = `
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) { a[i] = i * 3; }
	var s int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { s = s + (i ^ j); }
	}
	var p int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { p = p + (i & j); }
	}
	var q int = 0;
	for (var i int = 0; i < 400; i++) {
		for (var j int = 0; j < 400; j++) { q = q + i + j; }
	}
	print(s); print(p); print(q);
}`

// TestFleetSmokeHelper is not a test: it is the child process body for
// TestFleetSmoke, re-executed from the test binary to run `dca serve` with
// the argument list from the environment.
func TestFleetSmokeHelper(t *testing.T) {
	raw := os.Getenv("DCA_FLEET_SMOKE_ARGS")
	if raw == "" {
		t.Skip("helper process body; run via TestFleetSmoke")
	}
	if err := cmdServe(strings.Split(raw, "\x1f")); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func startServeChild(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestFleetSmokeHelper")
	cmd.Env = append(os.Environ(), "DCA_FLEET_SMOKE_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stderr = new(bytes.Buffer)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// freeAddr reserves a loopback port and releases it for a child to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, url string, child *exec.Cmd) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy; child stderr: %s", url, child.Stderr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// smokeTable renders the deterministic per-loop fields of a report.
func smokeTable(rep *core.ReportJSON) string {
	var b strings.Builder
	for _, l := range rep.Loops {
		fmt.Fprintf(&b, "%s #%d %s %s\n", l.Fn, l.Index, l.Verdict, l.Reason)
	}
	return b.String()
}

// TestFleetSmoke is the multi-process fleet contract: one coordinator and
// two worker processes, a reference analysis with both workers alive, then
// an async analysis during which one worker is SIGKILLed after the first
// streamed verdict — and the merged report must stay byte-identical.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	w1, w2, co := freeAddr(t), freeAddr(t), freeAddr(t)
	w1URL, w2URL, coURL := "http://"+w1, "http://"+w2, "http://"+co
	peers := w1URL + "," + w2URL

	// Workers run cacheless so the second pass recomputes and the kill
	// lands while its shard is genuinely in flight.
	startServeChild(t, "-addr", w1, "-no-cache", "-schedules", "1", "-peers", peers, "-self", w1URL)
	worker2 := startServeChild(t, "-addr", w2, "-no-cache", "-schedules", "1", "-peers", peers, "-self", w2URL)
	coord := startServeChild(t, "-addr", co, "-schedules", "1", "-fleet", peers)
	for _, probe := range []struct {
		url   string
		child *exec.Cmd
	}{{w1URL, worker2}, {w2URL, worker2}, {coURL, coord}} {
		waitHealthy(t, probe.url, probe.child)
	}

	reqBody, _ := json.Marshal(map[string]any{"filename": "smoke.mc", "source": fleetSmokeSrc})

	// Reference pass: both workers alive.
	resp, err := http.Post(coURL+"/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var ref struct {
		Report *core.ReportJSON `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ref.Report == nil {
		t.Fatalf("reference analyze: status %d, coordinator stderr: %s", resp.StatusCode, coord.Stderr)
	}
	want := smokeTable(ref.Report)
	if len(ref.Report.Loops) < 4 {
		t.Fatalf("reference has %d loops, want >= 4", len(ref.Report.Loops))
	}

	// Kill pass: async run, SIGKILL worker 2 after the first verdict lands.
	resp, err = http.Post(coURL+"/analyze?async=1", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var handle struct {
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&handle); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async analyze: status %d", resp.StatusCode)
	}

	events, err := http.Get(coURL + handle.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	killed := false
	var final fleet.Status
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			State string `json:"state"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.State != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("decode terminal status: %v\n%s", err, line)
			}
			break
		}
		if !killed {
			killed = true
			if err := worker2.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("stream ended before any verdict; kill never landed mid-suite")
	}
	if final.State != "done" || final.Report == nil {
		t.Fatalf("run after worker kill = %+v, want done with report; coordinator stderr: %s",
			final, coord.Stderr)
	}
	if got := smokeTable(final.Report); got != want {
		t.Errorf("report after mid-suite worker kill diverged:\n-- reference --\n%s-- killed --\n%s", want, got)
	}
}
