// Package parallel executes a DCA-instrumented loop with its payload
// iterations distributed over goroutine workers — the repo's stand-in for
// the paper's OpenMP code generation (§IV-C). It follows the same recipe as
// Tournavitis et al. [8]: the environment object is privatized per worker,
// scalar reductions are re-combined with their operator after the join, and
// loops whose shared state cannot be privatized are refused.
//
// The executor reuses the instrumented program: at @rt_iterator_permute it
// hijacks the driver — payload calls are issued from a worker pool, each
// worker running its own interpreter over the shared heap, and the
// sequential IR driver loop is then skipped.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"dca/internal/instrument"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/sandbox"
	"dca/internal/scalar"
)

// Options configures parallel execution.
type Options struct {
	// Workers is the goroutine pool size (default GOMAXPROCS).
	Workers int
	// Out receives program output.
	Out io.Writer
	// MaxSteps bounds each worker's execution (0 = interpreter default).
	MaxSteps int64
	// Chunk is the scheduling chunk size (default: n/workers, static).
	Chunk int
	// Timeout bounds the whole execution's wall-clock time (0 = none). On
	// expiry every worker and the driver are cancelled and RunLoop returns
	// an error matching interp.ErrCancelled.
	Timeout time.Duration
	// Inject deterministically trips traps inside worker executions — used
	// to test that a panicking or faulting worker cannot crash or deadlock
	// the pool. The injector's trip counter is shared across workers.
	Inject *sandbox.Injector
}

// Result reports a parallel execution.
type Result struct {
	Invocations int
	Iterations  int64
	Workers     int
}

// RunLoop executes the instrumented program with the tested loop's payload
// running in parallel. The caller is responsible for only parallelizing
// loops that DCA found commutative and whose memory accesses are
// race-free under the privatization/reduction scheme (doall loops and
// scalar reductions); RunLoop itself refuses loops whose environment
// fields it cannot privatize.
func RunLoop(inst *instrument.Instrumented, opt Options) (*Result, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	rt, err := newRuntime(inst, opt)
	if err != nil {
		return nil, err
	}
	rt.ctx = ctx
	if _, err := interp.Run(inst.Prog, interp.Config{Out: opt.Out, Runtime: rt, MaxSteps: opt.MaxSteps, Ctx: ctx}); err != nil {
		return nil, err
	}
	return &Result{Invocations: rt.invocations, Iterations: rt.iterations, Workers: opt.Workers}, nil
}

// combiner merges a worker-private accumulator into the shared value.
type combiner struct {
	identity func(cur ir.Value) ir.Value
	combine  func(global, private ir.Value) ir.Value
}

func combinerFor(op ir.BinKind, t ir.ValKind) (*combiner, bool) {
	switch op {
	case ir.Add:
		return &combiner{
			identity: func(cur ir.Value) ir.Value {
				if t == ir.KindFloat {
					return ir.FloatVal(0)
				}
				return ir.IntVal(0)
			},
			combine: func(g, p ir.Value) ir.Value {
				if t == ir.KindFloat {
					return ir.FloatVal(g.F + p.F)
				}
				return ir.IntVal(g.I + p.I)
			},
		}, true
	case ir.Mul:
		return &combiner{
			identity: func(cur ir.Value) ir.Value {
				if t == ir.KindFloat {
					return ir.FloatVal(1)
				}
				return ir.IntVal(1)
			},
			combine: func(g, p ir.Value) ir.Value {
				if t == ir.KindFloat {
					return ir.FloatVal(g.F * p.F)
				}
				return ir.IntVal(g.I * p.I)
			},
		}, true
	case ir.BitAnd:
		return &combiner{
			identity: func(cur ir.Value) ir.Value { return ir.IntVal(-1) },
			combine:  func(g, p ir.Value) ir.Value { return ir.IntVal(g.I & p.I) },
		}, true
	case ir.BitOr:
		return &combiner{
			identity: func(cur ir.Value) ir.Value { return ir.IntVal(0) },
			combine:  func(g, p ir.Value) ir.Value { return ir.IntVal(g.I | p.I) },
		}, true
	case ir.BitXor:
		return &combiner{
			identity: func(cur ir.Value) ir.Value { return ir.IntVal(0) },
			combine:  func(g, p ir.Value) ir.Value { return ir.IntVal(g.I ^ p.I) },
		}, true
	}
	return nil, false
}

// rtImpl hijacks the DCA runtime protocol for parallel execution.
type rtImpl struct {
	inst *instrument.Instrumented
	opt  Options
	ctx  context.Context
	// plan: per env field, nil = shared read-only, else reduction combiner.
	fieldComb []*combiner

	records     [][]ir.Value
	invocations int
	iterations  int64
}

func newRuntime(inst *instrument.Instrumented, opt Options) (*rtImpl, error) {
	rt := &rtImpl{inst: inst, opt: opt}
	// Classify env fields: written fields must be recognized reductions.
	written := inst.Sep.PayloadDefSet
	classOf := map[*ir.Local]scalar.Carried{}
	for _, c := range inst.Carried {
		classOf[c.Local] = c
	}
	rt.fieldComb = make([]*combiner, len(inst.Sep.EnvLocals))
	for i, l := range inst.Sep.EnvLocals {
		if !written[l] {
			continue // read-only: share
		}
		c, carried := classOf[l]
		if !carried || c.Class != scalar.Reduction {
			return nil, fmt.Errorf("parallel: env field %q is written but is not a recognized reduction (class %v): needs ordered commit", l.Name, c.Class)
		}
		comb, ok := combinerFor(c.Op, valKind(l))
		if !ok {
			return nil, fmt.Errorf("parallel: no combiner for reduction op %s on %q", c.Op, l.Name)
		}
		rt.fieldComb[i] = comb
	}
	return rt, nil
}

func valKind(l *ir.Local) ir.ValKind {
	switch l.Type.String() {
	case "float":
		return ir.KindFloat
	}
	return ir.KindInt
}

// Intrinsic implements interp.Runtime.
func (rt *rtImpl) Intrinsic(ev interp.Env, _ *interp.Frame, name string, args []ir.Value) (ir.Value, error) {
	switch name {
	case instrument.RTLinearize:
		tup := make([]ir.Value, len(args))
		copy(tup, args)
		rt.records = append(rt.records, tup)
		return ir.Value{}, nil
	case instrument.RTPermute:
		env := args[0]
		if env.IsNilRef() {
			return ir.Value{}, errors.New("parallel: nil environment")
		}
		if err := rt.runParallel(ev, env.Ref); err != nil {
			return ir.Value{}, err
		}
		rt.invocations++
		rt.iterations += int64(len(rt.records))
		rt.records = rt.records[:0]
		return ir.Value{}, nil
	case instrument.RTNext:
		return ir.BoolVal(false), nil // driver already ran in parallel
	case instrument.RTGet:
		return ir.Value{}, errors.New("parallel: unexpected rt_iterator_get")
	case instrument.RTVerify:
		return ir.Value{}, nil
	}
	return ir.Value{}, fmt.Errorf("parallel: unknown intrinsic %q", name)
}

// firstError picks the most informative worker error: a fault, panic, or
// budget exhaustion over the secondary cancellations it caused in siblings.
func firstError(errs []error) error {
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if sandbox.Classify(err) == sandbox.Timeout {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}

// runParallel fans the recorded iterations out over the worker pool.
func (rt *rtImpl) runParallel(parent interp.Env, env *ir.Object) error {
	n := len(rt.records)
	if n == 0 {
		return nil
	}
	workers := rt.opt.Workers
	if workers > n {
		workers = n
	}
	payload := rt.inst.Prog.Func(rt.inst.Payload.Payload.Name)
	if payload == nil {
		return errors.New("parallel: payload function missing")
	}
	// Private env per worker.
	envs := make([]*ir.Object, workers)
	for w := 0; w < workers; w++ {
		priv := &ir.Object{
			ID:       parent.NewObjectID(),
			TypeName: env.TypeName,
			Struct:   env.Struct,
			Elems:    append([]ir.Value(nil), env.Elems...),
		}
		for i, comb := range rt.fieldComb {
			if comb != nil {
				priv.Elems[i] = comb.identity(env.Elems[i])
			}
		}
		envs[w] = priv
	}
	// Static chunked schedule.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := rt.opt.Chunk
	if chunk <= 0 {
		chunk = (n + workers - 1) / workers
	}
	next := 0
	bounds := make([][2]int, 0, workers)
	for w := 0; w < workers && next < n; w++ {
		hi := next + chunk
		if w == workers-1 || hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{next, hi})
		next = hi
	}
	// One faulting worker cancels its siblings so the pool joins promptly
	// instead of letting them run their chunks to completion (or forever).
	base := rt.ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	for w, bd := range bounds {
		wg.Add(1)
		go func(w int, lo, hi int) {
			defer wg.Done()
			// A panicking worker must not take the process down or leave
			// the pool waiting: convert the panic to a structured error and
			// cancel the siblings.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("parallel: worker %d panicked: %v", w, r)
					cancel()
				}
			}()
			cfg := interp.Config{Out: rt.opt.Out, MaxSteps: rt.opt.MaxSteps, Ctx: ctx}
			if rt.opt.Inject.Enabled() {
				cfg.StepHook = rt.opt.Inject.StepHook()
			}
			wi := interp.New(rt.inst.Prog, cfg)
			envArg := ir.RefVal(envs[w])
			for k := lo; k < hi; k++ {
				if ctx.Err() != nil {
					errs[w] = &interp.CancelError{Fn: payload.Name, Steps: wi.Steps(), Cause: ctx.Err()}
					return
				}
				args := append(append([]ir.Value(nil), rt.records[k]...), envArg)
				if _, err := wi.Call(payload, args, nil); err != nil {
					switch sandbox.Classify(err) {
					case sandbox.Budget:
						errs[w] = fmt.Errorf("parallel: worker %d exhausted its budget at iteration %d: %w", w, k, err)
					case sandbox.Timeout:
						errs[w] = err // cancelled by a sibling or the deadline
					default:
						errs[w] = fmt.Errorf("parallel: worker %d faulted at iteration %d: %w", w, k, err)
					}
					cancel()
					return
				}
			}
		}(w, bd[0], bd[1])
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}
	// Combine.
	for i, comb := range rt.fieldComb {
		if comb == nil {
			continue
		}
		acc := env.Elems[i]
		for w := range bounds {
			acc = comb.combine(acc, envs[w].Elems[i])
		}
		env.Elems[i] = acc
	}
	return nil
}
