package bench_test

import (
	"strings"
	"testing"

	"dca/internal/bench"
	"dca/internal/workloads/npb"
	"dca/internal/workloads/plds"
)

// TestNPBSmall reproduces Tables I/III/IV exactly for the small benchmarks
// (kept fast enough for every test run; TestNPBFull covers the rest).
func TestNPBSmall(t *testing.T) {
	for _, name := range []string{"EP", "IS"} {
		assertNPB(t, npb.SpecByName(name))
	}
}

// TestNPBFull asserts the detection counts of every NPB proxy against the
// paper's tables. Run with -short to skip (it analyzes ~1600 loops).
func TestNPBFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full NPB suite skipped in -short mode")
	}
	for _, spec := range npb.Specs() {
		assertNPB(t, spec)
	}
}

func assertNPB(t *testing.T, spec *npb.Spec) {
	t.Helper()
	r, err := bench.RunNPB(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	row := r.Counts()
	p := spec.Paper
	if row.Loops != p.Loops {
		t.Errorf("%s: loops = %d, paper %d", spec.Name, row.Loops, p.Loops)
	}
	if p.DPReported && row.DepProf != p.DepProf {
		t.Errorf("%s: depprof = %d, paper %d", spec.Name, row.DepProf, p.DepProf)
	}
	if p.DPReported && row.DiscoPoP != p.DiscoPoP {
		t.Errorf("%s: discopop = %d, paper %d", spec.Name, row.DiscoPoP, p.DiscoPoP)
	}
	if row.Idioms != p.Idioms {
		t.Errorf("%s: idioms = %d, paper %d", spec.Name, row.Idioms, p.Idioms)
	}
	if row.Polly != p.Polly {
		t.Errorf("%s: polly = %d, paper %d", spec.Name, row.Polly, p.Polly)
	}
	if row.ICC != p.ICC {
		t.Errorf("%s: icc = %d, paper %d", spec.Name, row.ICC, p.ICC)
	}
	if row.Combined != p.Combined {
		t.Errorf("%s: combined = %d, paper %d", spec.Name, row.Combined, p.Combined)
	}
	if row.DCA != p.DCA {
		t.Errorf("%s: dca = %d, paper %d", spec.Name, row.DCA, p.DCA)
	}
	if _, fp, fn := r.Accuracy(); fp != 0 || fn != 0 {
		t.Errorf("%s: false positives %d / negatives %d, want 0/0", spec.Name, fp, fn)
	}
	s := r.Speedups()
	if s.DCA < 1 || s.ExpertLoop < s.DCA-0.01 {
		t.Errorf("%s: implausible speedups %+v", spec.Name, s)
	}
}

// TestPLDSHarness checks Table II / Figure 5 generation over two
// representative workloads.
func TestPLDSHarness(t *testing.T) {
	var results []*bench.PLDSResult
	for _, name := range []string{"treeadd", "BFS"} {
		r, err := bench.RunPLDS(plds.ByName(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.DCAFound {
			t.Errorf("%s: DCA missed the key loop (%s)", name, r.DCAWhy)
		}
		if len(r.BaselinesDetecting) > 0 {
			t.Errorf("%s: baselines unexpectedly detect: %v", name, r.BaselinesDetecting)
		}
		if r.Speedup <= 1 {
			t.Errorf("%s: Fig5 speedup = %.2f, want > 1", name, r.Speedup)
		}
		results = append(results, r)
	}
	tab := bench.TableII(results)
	if !strings.Contains(tab, "treeadd") || !strings.Contains(tab, "all fail") {
		t.Errorf("Table II rendering broken:\n%s", tab)
	}
	fig := bench.Figure5(results)
	if !strings.Contains(fig, "BFS") {
		t.Errorf("Figure 5 rendering broken:\n%s", fig)
	}
}

func TestGeoMean(t *testing.T) {
	if g := bench.GeoMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := bench.GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := bench.GeoMean([]float64{1, 0}); g != 0 {
		t.Errorf("GeoMean with zero = %v", g)
	}
}
