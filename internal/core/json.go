package core

import (
	"encoding/json"
	"time"
)

// LoopJSON is the machine-readable form of one LoopResult, emitted by
// `dca analyze -json` and the `dca serve` /analyze endpoint.
type LoopJSON struct {
	ID             string `json:"id"`
	Fn             string `json:"fn"`
	Index          int    `json:"index"`
	Pos            string `json:"pos,omitempty"`
	Depth          int    `json:"depth"`
	Verdict        string `json:"verdict"`
	Parallelizable bool   `json:"parallelizable"`
	// Category is the sandbox trap category ("fault", "budget", "timeout",
	// "panic") behind a trap-derived verdict; empty when no trap fired.
	Category        string `json:"category,omitempty"`
	Reason          string `json:"reason,omitempty"`
	Provenance      string `json:"provenance,omitempty"`
	Invocations     int    `json:"invocations"`
	Iterations      int64  `json:"iterations"`
	SchedulesTested int    `json:"schedules_tested"`
	Retries         int    `json:"retries,omitempty"`
	Replays         int    `json:"replays"`
	// SkippedStop / SkippedFootprint count schedule replays not run thanks
	// to the sequential stopping rule and the footprint fast path;
	// SkippedProve counts the schedule replays the static commutativity
	// prover skipped (the golden run still executes as the coverage
	// witness).
	SkippedStop      int     `json:"skipped_stop,omitempty"`
	SkippedFootprint int     `json:"skipped_footprint,omitempty"`
	SkippedProve     int     `json:"skipped_prove,omitempty"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
}

// ReportJSON is the machine-readable form of a whole-program Report.
type ReportJSON struct {
	Loops []LoopJSON `json:"loops"`
	// Summary counts loops per verdict name.
	Summary        map[string]int `json:"summary"`
	TotalLoops     int            `json:"total_loops"`
	Commutative    int            `json:"commutative"`
	CachedLoops    int            `json:"cached_loops"`
	ResumedLoops   int            `json:"resumed_loops,omitempty"`
	ProvedLoops    int            `json:"proved_loops,omitempty"`
	Replays        int            `json:"replays"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
}

// JSON converts the report to its machine-readable form. elapsed is the
// whole-analysis wall-clock time (0 leaves the field to the per-loop sums'
// readers).
func (r *Report) JSON(elapsed time.Duration) *ReportJSON {
	rep := &ReportJSON{
		Loops:          make([]LoopJSON, 0, len(r.Loops)),
		Summary:        map[string]int{},
		TotalLoops:     len(r.Loops),
		Commutative:    r.Count(Commutative),
		CachedLoops:    r.CachedLoops(),
		ResumedLoops:   r.ResumedLoops(),
		ProvedLoops:    r.ProvedLoops(),
		Replays:        r.Replays(),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, l := range r.Loops {
		rep.Summary[l.Verdict.String()]++
		rep.Loops = append(rep.Loops, l.JSON())
	}
	return rep
}

// JSON converts one loop result to its machine-readable form — the same
// record Report.JSON emits, also streamed per-loop by `GET /runs/{id}/events`.
func (l *LoopResult) JSON() LoopJSON {
	lj := LoopJSON{
		ID:               l.ID,
		Fn:               l.Fn,
		Index:            l.Index,
		Depth:            l.Depth,
		Verdict:          l.Verdict.String(),
		Parallelizable:   l.Verdict.IsParallelizable(),
		Category:         l.TrapKind,
		Reason:           l.Reason,
		Provenance:       l.Provenance,
		Invocations:      l.Invocations,
		Iterations:       l.Iterations,
		SchedulesTested:  l.SchedulesTested,
		Retries:          l.Retries,
		Replays:          l.Replays,
		SkippedStop:      l.SkippedStop,
		SkippedFootprint: l.SkippedFootprint,
		SkippedProve:     l.SkippedProve,
		ElapsedSeconds:   l.Elapsed.Seconds(),
	}
	if l.Pos.IsValid() {
		lj.Pos = l.Pos.String()
	}
	return lj
}

// MarshalIndentJSON renders the report as indented JSON with a trailing
// newline — the exact bytes `dca analyze -json` prints.
func (r *Report) MarshalIndentJSON(elapsed time.Duration) ([]byte, error) {
	data, err := json.MarshalIndent(r.JSON(elapsed), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
