package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/obs"
)

// MaxPeerRecord caps how many bytes a peer-cache response (or write-through
// body) may carry. Verdict records are a few hundred bytes; the cap only
// exists so a confused or malicious peer cannot balloon memory. The
// server's /cache/{key} handlers enforce the same bound on inbound bodies.
const MaxPeerRecord = 1 << 20

// defaultPeerTimeout bounds one peer-cache HTTP round trip. The peer
// protocol is an optimization: a slow peer must degrade to a local miss
// (recomputation) long before it stalls the analysis it was meant to speed
// up.
const defaultPeerTimeout = 5 * time.Second

// PeerCache implements core.VerdictCache over a node-local cache plus the
// fleet's cache ring. Lookups consult the local cache first, then the
// key's ring owner over HTTP; fresh verdicts are written through to the
// owner so any node's computation becomes every node's warm start.
//
// Every failure mode — unreachable owner, non-200 status, oversized or
// syntactically corrupt body — degrades to a local miss: the analysis
// recomputes the verdict exactly as if no fleet existed. (Bodies that are
// valid JSON but semantically wrong are rejected one layer up by the
// verdict decoder, with the same recomputation outcome.)
type PeerCache struct {
	local  core.VerdictCache
	ring   *Ring
	self   string // this node's own ring name; owner==self short-circuits
	client *http.Client
	m      *Metrics
	trace  obs.Sink
}

// PeerConfig assembles a PeerCache.
type PeerConfig struct {
	// Local is the node's own verdict cache (required).
	Local core.VerdictCache
	// Ring is the fleet's cache ring (required).
	Ring *Ring
	// Self is this node's own name on the ring; lookups it owns itself
	// never leave the process.
	Self string
	// Client overrides the HTTP client (nil means a client with
	// defaultPeerTimeout).
	Client *http.Client
	// Metrics, when non-nil, receives peer hit/miss/error/write counts.
	Metrics *Metrics
	// Trace, when non-nil, receives one StagePeer event per remote lookup.
	Trace obs.Sink
}

// NewPeerCache builds the peer-aware verdict cache.
func NewPeerCache(cfg PeerConfig) *PeerCache {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: defaultPeerTimeout}
	}
	return &PeerCache{
		local:  cfg.Local,
		ring:   cfg.Ring,
		self:   cfg.Self,
		client: client,
		m:      cfg.Metrics,
		trace:  cfg.Trace,
	}
}

func (p *PeerCache) emit(outcome, errText string) {
	if p.trace != nil {
		p.trace.Emit(obs.Event{Stage: obs.StagePeer, Outcome: outcome, Err: errText})
	}
}

// Get consults the local cache, then the key's ring owner. A peer hit is
// inserted into the local cache before returning, so the next lookup for
// the same fingerprint never leaves the node again.
func (p *PeerCache) Get(key string) ([]byte, bool) {
	if data, ok := p.local.Get(key); ok {
		return data, true
	}
	owner := p.owner(key)
	if owner == "" {
		return nil, false
	}
	resp, err := p.client.Get(owner + "/cache/" + key)
	if err != nil {
		if p.m != nil {
			p.m.PeerErrors.Inc()
		}
		p.emit(obs.OutcomeError, err.Error())
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		if p.m != nil {
			p.m.PeerMisses.Inc()
		}
		p.emit(obs.OutcomeMiss, "")
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		if p.m != nil {
			p.m.PeerErrors.Inc()
		}
		p.emit(obs.OutcomeError, resp.Status)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerRecord+1))
	// A transport error, an oversized body, or bytes that are not even
	// JSON all mean the peer record cannot be trusted; none of them may
	// reach the local cache or the caller. Recomputation is always correct.
	if err != nil || len(data) > MaxPeerRecord || !json.Valid(data) {
		if p.m != nil {
			p.m.PeerErrors.Inc()
		}
		p.emit(obs.OutcomeError, "corrupt peer record")
		return nil, false
	}
	if p.m != nil {
		p.m.PeerHits.Inc()
	}
	p.emit(obs.OutcomeHit, "")
	p.local.Put(key, data)
	return data, true
}

// Put stores the verdict locally and writes it through to the key's ring
// owner. Write-through failures are counted and dropped: the verdict is
// durable on this node either way, and the owner will be repopulated by
// the next analysis that computes it.
func (p *PeerCache) Put(key string, val []byte) {
	p.local.Put(key, val)
	owner := p.owner(key)
	if owner == "" {
		return
	}
	req, err := http.NewRequest(http.MethodPut, owner+"/cache/"+key, bytes.NewReader(val))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		if p.m != nil {
			p.m.PeerErrors.Inc()
		}
		p.emit(obs.OutcomeError, err.Error())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, MaxPeerRecord))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		if p.m != nil {
			p.m.PeerErrors.Inc()
		}
		p.emit(obs.OutcomeError, resp.Status)
		return
	}
	if p.m != nil {
		p.m.PeerWrites.Inc()
	}
}

// owner resolves the remote ring owner for key, or "" when the lookup
// must stay local: a malformed key, an empty ring, or this node owning
// the key itself.
func (p *PeerCache) owner(key string) string {
	if !cache.ValidKey(key) {
		return ""
	}
	owner := p.ring.Owner(key, nil)
	if owner == p.self {
		return ""
	}
	return owner
}
