package interp

import "dca/internal/ir"

// Footprint records, during one execution, which heap cells each *segment*
// (one driver iteration of the instrumented loop) reads and writes, and
// whether any cell is shared between segments. If every segment's write set
// is disjoint from every other segment's read and write sets, the loop body
// behaves identically under any permutation of its iterations, so the
// dynamic stage can return Commutative from the golden run alone and skip
// the permuted replays (provenance "footprint-proved").
//
// The recorder is deliberately not a Tracer: it is a concrete type hooked
// directly into both executors' load/store paths, with an early-out when no
// segment is open (everything outside driver iterations) and a permanent
// early-out after the first conflict, so non-disjoint loops stop paying for
// it after their first colliding access.
//
// Cells are keyed by (object ID, element index). Object IDs are minted
// sequentially per run and element indices are bounded by the 64M array
// cap, so id<<32|idx is injective and the multiply/xor-shift mix below is a
// bijection: distinct cells never alias in the table.
type Footprint struct {
	seg      int32 // current segment; -1 = not inside a driver iteration
	epoch    int32 // current invocation; stale table entries are ignored
	segs     int32 // total segments opened
	conflict bool

	// Open-addressed hash table, power-of-two sized, linear probing.
	keys   []uint64 // 0 = empty slot
	states []fpState
	used   int
}

type fpState struct {
	reader int32 // -1 none, -2 several segments, else the single reading segment
	writer int32 // -1 none, else the single writing segment
	epoch  int32
}

// NewFootprint returns an empty recorder with no open segment.
func NewFootprint() *Footprint {
	return &Footprint{
		seg:    -1,
		keys:   make([]uint64, 1024),
		states: make([]fpState, 1024),
	}
}

// BeginSegment opens the next segment; subsequent accesses are attributed
// to it. The DCA runtime calls this when rt_next hands out an iteration.
func (f *Footprint) BeginSegment() {
	f.segs++
	f.seg = f.segs - 1
}

// EndSegment closes the current segment; accesses are ignored until the
// next BeginSegment. Called when rt_next reports the schedule is drained.
func (f *Footprint) EndSegment() { f.seg = -1 }

// EndInvocation closes the segment and starts a new invocation epoch:
// sharing between iterations of *different* invocations is fine (their
// relative order is never permuted), so earlier table entries stop
// counting. Called from rt_verify.
func (f *Footprint) EndInvocation() {
	f.seg = -1
	f.epoch++
}

// Disjoint reports whether at least one iteration ran and no heap cell was
// shared between two iterations of the same invocation.
func (f *Footprint) Disjoint() bool { return f.segs > 0 && !f.conflict }

// Active reports whether the recorder currently wants access events — a
// segment is open and no conflict has been found. Executors use it to skip
// the per-store value comparison on the (frequent) accesses outside driver
// iterations and on everything after the first conflict.
func (f *Footprint) Active() bool { return f.seg >= 0 && !f.conflict }

func cellKey(obj *ir.Object, idx int) uint64 {
	k := uint64(obj.ID)<<32 | uint64(uint32(idx))
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	if k == 0 {
		k = 1
	}
	return k
}

// OnLoad records a heap read of obj[idx].
func (f *Footprint) OnLoad(obj *ir.Object, idx int) {
	if f.seg < 0 || f.conflict {
		return
	}
	s := f.slot(cellKey(obj, idx))
	if s.writer >= 0 && s.writer != f.seg {
		f.conflict = true
		return
	}
	if s.reader == -1 {
		s.reader = f.seg
	} else if s.reader != f.seg {
		s.reader = -2
	}
}

// OnStore records a heap write of obj[idx]. same reports that the stored
// value equals (ir.Value.Equal) the cell's current content: such a silent
// store is recorded as a read — dropping it changes nothing, so it only
// conflicts with another segment's *real* write, exactly like a read. This
// matters in practice: the outlined payload's epilogue writes every
// environment field back each iteration, and for unmodified fields those
// write-backs must not make every loop look self-conflicting.
func (f *Footprint) OnStore(obj *ir.Object, idx int, same bool) {
	if f.seg < 0 || f.conflict {
		return
	}
	if same {
		f.OnLoad(obj, idx)
		return
	}
	s := f.slot(cellKey(obj, idx))
	if (s.writer >= 0 && s.writer != f.seg) || (s.reader != -1 && s.reader != f.seg) {
		f.conflict = true
		return
	}
	s.writer = f.seg
}

func (f *Footprint) slot(k uint64) *fpState {
	mask := uint64(len(f.keys) - 1)
	i := k & mask
	for {
		switch f.keys[i] {
		case k:
			s := &f.states[i]
			if s.epoch != f.epoch {
				*s = fpState{reader: -1, writer: -1, epoch: f.epoch}
			}
			return s
		case 0:
			if f.used >= len(f.keys)*3/4 {
				f.grow()
				return f.slot(k)
			}
			f.used++
			f.keys[i] = k
			f.states[i] = fpState{reader: -1, writer: -1, epoch: f.epoch}
			return &f.states[i]
		}
		i = (i + 1) & mask
	}
}

func (f *Footprint) grow() {
	oldKeys, oldStates := f.keys, f.states
	f.keys = make([]uint64, len(oldKeys)*2)
	f.states = make([]fpState, len(oldStates)*2)
	mask := uint64(len(f.keys) - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := k & mask
		for f.keys[j] != 0 {
			j = (j + 1) & mask
		}
		f.keys[j] = k
		f.states[j] = oldStates[i]
	}
}
