package plds

func perimeter() *Program {
	return &Program{
		Name: "perimeter", Origin: "Olden", Function: "perimeter",
		CoveragePct: 100, PotentialLoop: "2.25", PotentialOverall: "-",
		Technique: "DSWP variant 1",
		KeyFn:     "perimeter", KeyLoop: 0,
		Fig5: true, Fig5Target: 2.3, Cap: 2.45,
		Source: `
// Olden's quadtree perimeter, rewritten in imperative form (as in the
// paper's methodology): leaves are threaded into a list and each leaf
// inspects its four neighbours to add its exposed edges.
struct QLeaf { size int; color int; nN *QLeaf; nS *QLeaf; nE *QLeaf; nW *QLeaf; perim int; thread *QLeaf; }
func build(n int) *QLeaf {
	var leaves []*QLeaf = new [n]*QLeaf;
	var head *QLeaf = nil;
	for (var i int = 0; i < n; i++) {
		var l *QLeaf = new QLeaf;
		l->size = (i % 4) + 1;
		l->color = (i * 7 + 2) % 2;
		l->thread = head;
		head = l;
		leaves[i] = l;
	}
	for (var i int = 0; i < n; i++) {
		leaves[i]->nN = leaves[(i + 1) % n];
		leaves[i]->nS = leaves[(i + n - 1) % n];
		leaves[i]->nE = leaves[(i * 3 + 1) % n];
		leaves[i]->nW = leaves[(i * 5 + 2) % n];
	}
	return head;
}
func perimeter(head *QLeaf) {
	var l *QLeaf = head;
	while (l != nil) {
		var p int = 0;
		if (l->color == 1) {
			if (l->nN->color == 0) { p += l->size; }
			if (l->nS->color == 0) { p += l->size; }
			if (l->nE->color == 0) { p += l->size; }
			if (l->nW->color == 0) { p += l->size; }
		}
		l->perim = p;
		l = l->thread;
	}
}
func checksum(head *QLeaf) int {
	var s int = 0;
	var l *QLeaf = head;
	while (l != nil) { s += l->perim; l = l->thread; }
	return s;
}
func main() {
	var head *QLeaf = build(96);
	for (var t int = 0; t < 16; t++) { perimeter(head); }
	print(checksum(head));
}
`,
	}
}

func treeadd() *Program {
	return &Program{
		Name: "treeadd", Origin: "Olden", Function: "TreeAdd",
		CoveragePct: 100, PotentialLoop: "-", PotentialOverall: "7",
		Technique: "Partitioning",
		KeyFn:     "TreeAdd", KeyLoop: 0,
		Fig5: true, Fig5Target: 7.0, Cap: 10.5,
		Source: `
// Olden's treeadd, with the recursive sum rewritten over an in-order
// thread of the tree (the imperative form of the paper's methodology).
struct TNode { val int; left *TNode; right *TNode; thread *TNode; }
func build(depth int) *TNode {
	// Build a complete binary tree level by level, threading all nodes.
	var count int = 1;
	for (var d int = 0; d < depth; d++) { count = count * 2; }
	count = count - 1;
	var nodes []*TNode = new [count]*TNode;
	var head *TNode = nil;
	for (var i int = count - 1; i >= 0; i--) {
		var t *TNode = new TNode;
		t->val = (i * 11 + 3) % 101;
		if (2 * i + 1 < count) { t->left = nodes[2*i+1]; }
		if (2 * i + 2 < count) { t->right = nodes[2*i+2]; }
		t->thread = head;
		head = t;
		nodes[i] = t;
	}
	return head;
}
func TreeAdd(head *TNode) int {
	var total int = 0;
	var t *TNode = head;
	while (t != nil) {
		var v int = t->val;
		if (t->left != nil) { v += t->left->val % 7; }
		if (t->right != nil) { v += t->right->val % 5; }
		total += v;
		t = t->thread;
	}
	return total;
}
func main() {
	var head *TNode = build(9);
	var total int = 0;
	for (var t int = 0; t < 24; t++) { total += TreeAdd(head); }
	print(total);
}
`,
	}
}

func hash() *Program {
	return &Program{
		Name: "hash", Origin: "Shootout", Function: "ht_find",
		CoveragePct: 50, PotentialLoop: "-", PotentialOverall: "4",
		Technique: "Partitioning",
		KeyFn:     "ht_find", KeyLoop: 0,
		Source: `
struct HEntry { key int; val int; next *HEntry; }
struct Query { key int; answer int; next *Query; }
func buildTable(buckets []*HEntry, n int) {
	for (var i int = 0; i < n; i++) {
		var e *HEntry = new HEntry;
		e->key = i * 3 + 1;
		e->val = (i * 17 + 5) % 211;
		var b int = (i * 3 + 1) % len(buckets);
		e->next = buckets[b];
		buckets[b] = e;
	}
}
func buildQueries(n int) *Query {
	var head *Query = nil;
	for (var i int = 0; i < n; i++) {
		var q *Query = new Query;
		q->key = (i * 7 + 1) % 300;
		q->next = head;
		head = q;
	}
	return head;
}
// ht_find: answer every query by walking its hash chain.
func ht_find(buckets []*HEntry, qs *Query) {
	var q *Query = qs;
	while (q != nil) {
		var found int = -1;
		var e *HEntry = buckets[q->key % len(buckets)];
		while (e != nil) {
			if (e->key == q->key) { found = e->val; }
			e = e->next;
		}
		q->answer = found;
		q = q->next;
	}
}
func checksum(qs *Query) int {
	var s int = 0;
	var q *Query = qs;
	while (q != nil) { s += q->answer + 1; q = q->next; }
	return s;
}
func serialwork(qs *Query) int {
	var acc int = 0;
	for (var r int = 0; r < 9; r++) { acc += checksum(qs); }
	return acc;
}
func main() {
	var buckets []*HEntry = new [16]*HEntry;
	buildTable(buckets, 100);
	var qs *Query = buildQueries(64);
	ht_find(buckets, qs);
	ht_find(buckets, qs);
	print(checksum(qs), serialwork(qs));
}
`,
	}
}

func bfs() *Program {
	return &Program{
		Name: "BFS", Origin: "Lonestar", Function: "BFS",
		CoveragePct: 99, PotentialLoop: "-", PotentialOverall: "21",
		Technique: "Galois",
		KeyFn:     "bfs_round", KeyLoop: 0,
		Fig5: true, Fig5Target: 36.9, Cap: 40,
		Source: `
// Lonestar BFS (the paper's Fig. 2): a frontier-driven traversal over a
// pointer-linked graph. The frontier is a membership array so the worklist
// is a set: processing order within one round cannot leak into the
// live-outs, which is precisely the commutativity DCA establishes for the
// top-down step.
struct GNode { vert int; adj *GEdge; }
struct GEdge { to *GNode; next *GEdge; }
func build(nodes []*GNode, n int, deg int) {
	for (var i int = 0; i < n; i++) {
		var g *GNode = new GNode;
		g->vert = i;
		nodes[i] = g;
	}
	for (var i int = 0; i < n; i++) {
		var eh *GEdge = nil;
		for (var j int = 0; j < deg; j++) {
			var e *GEdge = new GEdge;
			e->to = nodes[(i + j * 3 + 1) % n];
			e->next = eh;
			eh = e;
		}
		nodes[i]->adj = eh;
	}
}
// bfs_round: the top-down step. Every frontier vertex relaxes its
// neighbours; all updates in one round write the same distance, so the
// iteration order is commutative while the dist/next conflicts defeat
// dependence profiling.
func bfs_round(nodes []*GNode, infront []int, nextfront []int, dist []int, n int, level int) int {
	var added int = 0;
	for (var v int = 0; v < n; v++) {
		if (infront[v] == 1) {
			var e *GEdge = nodes[v]->adj;
			while (e != nil) {
				var u int = e->to->vert;
				if (dist[u] > level + 1) {
					dist[u] = level + 1;
					if (nextfront[u] == 0) { nextfront[u] = 1; added++; }
				}
				e = e->next;
			}
		}
	}
	return added;
}
func search(nodes []*GNode, dist []int, infront []int, nextfront []int, n int, src int) int {
	for (var i int = 0; i < n; i++) { dist[i] = 1000000; infront[i] = 0; nextfront[i] = 0; }
	dist[src] = 0;
	infront[src] = 1;
	var level int = 0;
	var remaining int = 1;
	while (remaining > 0) {
		remaining = bfs_round(nodes, infront, nextfront, dist, n, level);
		for (var i int = 0; i < n; i++) { infront[i] = nextfront[i]; nextfront[i] = 0; }
		level++;
	}
	var s int = 0;
	for (var i int = 0; i < n; i++) { s += dist[i] % 4096; }
	return s + level;
}
func main() {
	var n int = 360;
	var nodes []*GNode = new [n]*GNode;
	build(nodes, n, 48);
	var dist []int = new [n]int;
	var infront []int = new [n]int;
	var nextfront []int = new [n]int;
	var s int = 0;
	for (var q int = 0; q < 6; q++) {
		s += search(nodes, dist, infront, nextfront, n, (q * 61) % n);
	}
	print(s);
}
`,
	}
}

func ising() *Program {
	return &Program{
		Name: "ising", Origin: "community", Function: "main",
		CoveragePct: 95, PotentialLoop: "-", PotentialOverall: "6",
		Technique: "ASC",
		KeyFn:     "sweep_even", KeyLoop: 0,
		Fig5: true, Fig5Target: 6.0, Cap: 6.9,
		Source: `
// A checkerboard Ising sweep over a pointer-linked lattice: the even
// sublattice is threaded into a list, each site reads its neighbours'
// spins and writes its own — a two-phase update whose iterations commute.
struct Site { spin int; newspin int; up *Site; down *Site; left *Site; right *Site; evennext *Site; }
func build(n int) *Site {
	var sites []*Site = new [n]*Site;
	for (var i int = 0; i < n; i++) {
		var st *Site = new Site;
		st->spin = ((i * 13 + 5) % 2) * 2 - 1;
		sites[i] = st;
	}
	var dim int = 16;
	for (var i int = 0; i < n; i++) {
		sites[i]->up = sites[(i + dim) % n];
		sites[i]->down = sites[(i + n - dim) % n];
		sites[i]->left = sites[(i + n - 1) % n];
		sites[i]->right = sites[(i + 1) % n];
	}
	var head *Site = nil;
	for (var i int = 0; i < n; i++) {
		if (i % 2 == 0) { sites[i]->evennext = head; head = sites[i]; }
	}
	return head;
}
func sweep_even(head *Site) {
	var s *Site = head;
	while (s != nil) {
		var field int = s->up->spin + s->down->spin + s->left->spin + s->right->spin;
		if (field > 0) { s->newspin = 1; }
		if (field < 0) { s->newspin = 0 - 1; }
		if (field == 0) { s->newspin = s->spin; }
		s = s->evennext;
	}
}
func commit(head *Site) int {
	var mag int = 0;
	var s *Site = head;
	while (s != nil) { s->spin = s->newspin; mag += s->spin; s = s->evennext; }
	return mag;
}
func main() {
	var head *Site = build(256);
	var mag int = 0;
	for (var sweep int = 0; sweep < 24; sweep++) {
		sweep_even(head);
		mag += commit(head);
	}
	print(mag);
}
`,
	}
}

func spmatmat() *Program {
	return &Program{
		Name: "spmatmat", Origin: "SPARK00", Function: "main",
		CoveragePct: 89, PotentialLoop: "-", PotentialOverall: "4",
		Technique: "APOLLO",
		KeyFn:     "spmv_rows", KeyLoop: 0,
		Fig5: true, Fig5Target: 4.0, Cap: 5.0,
		Source: `
// SPARK00-style sparse matrix times dense matrix: rows are a linked list
// of element chains; each row's products accumulate into its private slice
// of the dense result.
struct Row { id int; elems *Elem; next *Row; }
struct Elem { col int; val int; next *Elem; }
func build(nrows int, percol int) *Row {
	var head *Row = nil;
	for (var i int = nrows - 1; i >= 0; i--) {
		var r *Row = new Row;
		r->id = i;
		var eh *Elem = nil;
		for (var j int = 0; j < percol; j++) {
			var e *Elem = new Elem;
			e->col = (i * 3 + j * 7) % 24;
			e->val = (i * 13 + j * 5 + 1) % 19;
			e->next = eh;
			eh = e;
		}
		r->elems = eh;
		r->next = head;
		head = r;
	}
	return head;
}
func spmv_rows(rows *Row, b []int, c []int, width int) {
	var r *Row = rows;
	while (r != nil) {
		for (var k int = 0; k < width; k++) {
			var acc int = 0;
			var e *Elem = r->elems;
			while (e != nil) {
				acc += e->val * b[e->col * width + k];
				e = e->next;
			}
			c[r->id * width + k] = acc;
		}
		r = r->next;
	}
}
func main() {
	var nrows int = 40;
	var width int = 12;
	var rows *Row = build(nrows, 10);
	var b []int = new [288]int;
	for (var i int = 0; i < 288; i++) { b[i] = (i * 7 + 3) % 23; }
	var c []int = new [480]int;
	spmv_rows(rows, b, c, width);
	spmv_rows(rows, b, c, width);
	var s int = 0;
	for (var i int = 0; i < 480; i++) { s += c[i]; }
	print(s);
}
`,
	}
}

func water() *Program {
	return &Program{
		Name: "water-spatial", Origin: "SPLASH3", Function: "INTERF",
		CoveragePct: 63, PotentialLoop: "-", PotentialOverall: "2",
		Technique: "OPENMP",
		KeyFn:     "INTERF", KeyLoop: 0,
		Fig5: true, Fig5Target: 2.0, Cap: 2.15,
		Source: `
// SPLASH3 water-spatial INTERF phase: molecules live in cell lists; each
// molecule accumulates pair forces from molecules in its neighbour cells.
struct Mol { x int; y int; fsum int; next *Mol; }
struct WCell { mols *Mol; nbr1 *WCell; nbr2 *WCell; allnext *Mol; thread *WCell; }
func build(ncells int, percell int) *WCell {
	var cells []*WCell = new [ncells]*WCell;
	for (var i int = 0; i < ncells; i++) { cells[i] = new WCell; }
	for (var i int = 0; i < ncells; i++) {
		cells[i]->nbr1 = cells[(i + 1) % ncells];
		cells[i]->nbr2 = cells[(i + ncells - 1) % ncells];
		var mh *Mol = nil;
		for (var j int = 0; j < percell; j++) {
			var m *Mol = new Mol;
			m->x = (i * 31 + j * 7 + 1) % 173;
			m->y = (i * 17 + j * 13 + 5) % 181;
			m->next = mh;
			mh = m;
		}
		cells[i]->mols = mh;
	}
	var head *WCell = nil;
	for (var i int = ncells - 1; i >= 0; i--) { cells[i]->thread = head; head = cells[i]; }
	return head;
}
func pairforce(a *Mol, b *Mol) int {
	var dx int = a->x - b->x;
	var dy int = a->y - b->y;
	return (dx * dx + dy * dy) % 97;
}
func INTERF(cells *WCell) {
	var c *WCell = cells;
	while (c != nil) {
		var m *Mol = c->mols;
		while (m != nil) {
			var f int = 0;
			var o *Mol = c->nbr1->mols;
			while (o != nil) { f += pairforce(m, o); o = o->next; }
			o = c->nbr2->mols;
			while (o != nil) { f += pairforce(m, o); o = o->next; }
			m->fsum = f;
			m = m->next;
		}
		c = c->thread;
	}
}
func checksum(cells *WCell) int {
	var s int = 0;
	var c *WCell = cells;
	while (c != nil) {
		var m *Mol = c->mols;
		while (m != nil) { s += m->fsum; m = m->next; }
		c = c->thread;
	}
	return s;
}
func serialwork(cells *WCell) int {
	var acc int = 0;
	for (var r int = 0; r < 11; r++) { acc += checksum(cells); }
	return acc;
}
func main() {
	var cells *WCell = build(12, 6);
	INTERF(cells);
	print(checksum(cells), serialwork(cells));
}
`,
	}
}
