package dcart_test

import (
	"fmt"
	"math"
	"testing"

	"dca/internal/dcart"
	"dca/internal/ir"
	"dca/internal/types"
)

// graphCases builds a spread of value graphs whose pairwise string
// (in)equality the digest must reproduce: scalars, nested/shared/cyclic
// heap shapes, and the serializer's deliberate conflations.
func graphCases() map[string][]ir.Value {
	listSI := types.NewStructInfo("N", []types.FieldInfo{
		{Name: "v", Type: types.IntType},
		{Name: "next", Type: &types.Type{Kind: types.Pointer}},
	})
	mkList := func(base int64, vals ...int64) ir.Value {
		var head ir.Value = ir.NilVal()
		for i := len(vals) - 1; i >= 0; i-- {
			o := ir.NewStructObject(base+int64(i), listSI)
			o.Elems[0] = ir.IntVal(vals[i])
			o.Elems[1] = head
			head = ir.RefVal(o)
		}
		return head
	}
	two := types.NewStructInfo("D", []types.FieldInfo{
		{Name: "l", Type: &types.Type{Kind: types.Pointer}},
		{Name: "r", Type: &types.Type{Kind: types.Pointer}},
	})
	leafT := types.NewStructInfo("L", []types.FieldInfo{{Name: "v", Type: types.IntType}})
	shared := ir.NewStructObject(3, two)
	leaf := ir.NewStructObject(4, leafT)
	shared.Elems[0], shared.Elems[1] = ir.RefVal(leaf), ir.RefVal(leaf)
	copies := ir.NewStructObject(5, two)
	copies.Elems[0], copies.Elems[1] = ir.RefVal(ir.NewStructObject(6, leafT)), ir.RefVal(ir.NewStructObject(7, leafT))

	cyc := ir.NewStructObject(8, listSI)
	cyc.Elems[0] = ir.IntVal(1)
	cyc.Elems[1] = ir.RefVal(cyc)

	arr := ir.NewArrayObject(9, types.IntType, 4)
	for i := range arr.Elems {
		arr.Elems[i] = ir.IntVal(int64(i * i))
	}

	return map[string][]ir.Value{
		"empty":        nil,
		"scalars":      {ir.IntVal(1), ir.BoolVal(true), ir.FloatVal(2.5), ir.StringVal("x"), ir.NilVal()},
		"scalars2":     {ir.IntVal(1), ir.BoolVal(false), ir.FloatVal(2.5), ir.StringVal("x"), ir.NilVal()},
		"int-0":        {ir.IntVal(0)},
		"int-neg":      {ir.IntVal(-7)},
		"float-0":      {ir.FloatVal(0)},
		"float-neg0":   {ir.FloatVal(math.Copysign(0, -1))},
		"float-inf":    {ir.FloatVal(math.Inf(1))},
		"float-nan":    {ir.FloatVal(math.NaN())},
		"float-nan2":   {ir.FloatVal(math.Float64frombits(0x7ff8000000000001))},
		"str-empty":    {ir.StringVal("")},
		"str-short":    {ir.StringVal("ab")},
		"str-8":        {ir.StringVal("abcdefgh")},
		"str-9":        {ir.StringVal("abcdefghi")},
		"str-zeros":    {ir.StringVal("ab\x00\x00")},
		"str-zeros2":   {ir.StringVal("ab\x00")},
		"nil-kind":     {ir.NilVal()},
		"nil-ref":      {{Kind: ir.KindRef, Ref: nil}},
		"list-a":       {mkList(100, 10, 11, 12)},
		"list-a-again": {mkList(900, 10, 11, 12)},
		"list-b":       {mkList(100, 10, 11, 13)},
		"shared":       {ir.RefVal(shared)},
		"copies":       {ir.RefVal(copies)},
		"cycle":        {ir.RefVal(cyc)},
		"array":        {ir.RefVal(arr)},
		// Concatenation ambiguity probes: ["ab","c"] vs ["a","bc"].
		"split-1": {ir.StringVal("ab"), ir.StringVal("c")},
		"split-2": {ir.StringVal("a"), ir.StringVal("bc")},
	}
}

// TestDigestMatchesStringEquality: across all pairs of graph cases, digest
// equality must coincide with string-snapshot equality — the equivalence
// contract the dynamic stage's live-out verification rests on.
func TestDigestMatchesStringEquality(t *testing.T) {
	cases := graphCases()
	for na, a := range cases {
		for nb, b := range cases {
			sEq := dcart.Snapshot(a) == dcart.Snapshot(b)
			dEq := dcart.SnapshotDigest(a) == dcart.SnapshotDigest(b)
			if sEq != dEq {
				t.Errorf("%s vs %s: stringEq=%v digestEq=%v\n  a=%s\n  b=%s",
					na, nb, sEq, dEq, dcart.Snapshot(a), dcart.Snapshot(b))
			}
		}
	}
}

// TestDigestObservesMutation mirrors TestSnapshotObservesMutation.
func TestDigestObservesMutation(t *testing.T) {
	o := ir.NewArrayObject(1, types.IntType, 3)
	before := dcart.SnapshotDigest([]ir.Value{ir.RefVal(o)})
	o.Elems[1] = ir.IntVal(7)
	if before == dcart.SnapshotDigest([]ir.Value{ir.RefVal(o)}) {
		t.Error("mutation must change the digest")
	}
}

// TestDigestCycleTerminates: back-references must terminate traversal.
func TestDigestCycleTerminates(t *testing.T) {
	si := types.NewStructInfo("C", []types.FieldInfo{
		{Name: "next", Type: &types.Type{Kind: types.Pointer}},
	})
	a := ir.NewStructObject(1, si)
	b := ir.NewStructObject(2, si)
	a.Elems[0] = ir.RefVal(b)
	b.Elems[0] = ir.RefVal(a)
	d := dcart.SnapshotDigest([]ir.Value{ir.RefVal(a)})
	if d == (dcart.Digest{}) {
		t.Error("cycle digest should be non-zero")
	}
	if len(d.String()) != 32 {
		t.Errorf("Digest.String() = %q, want 32 hex digits", d.String())
	}
}

// TestRuntimeDebugSnapshots: the debug flag materializes parallel string
// snapshots matching the digests one-to-one.
func TestRuntimeDebugSnapshots(t *testing.T) {
	rt := dcart.NewRuntime(dcart.Identity{})
	rt.DebugSnapshots = true
	if _, err := rt.Intrinsic(nil, nil, "rt_iterator_permute", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Intrinsic(nil, nil, "rt_verify", []ir.Value{ir.IntVal(9)}); err != nil {
		t.Fatal(err)
	}
	if len(rt.Snapshots) != 1 || len(rt.SnapshotStrings) != 1 {
		t.Fatalf("snapshots=%d strings=%d", len(rt.Snapshots), len(rt.SnapshotStrings))
	}
	if rt.SnapshotStrings[0] != "i9;" {
		t.Errorf("debug string = %q", rt.SnapshotStrings[0])
	}
	if rt.Snapshots[0] != dcart.SnapshotDigest([]ir.Value{ir.IntVal(9)}) {
		t.Error("digest mismatch vs direct SnapshotDigest")
	}
}

// benchRoots builds a ~1000-object heap typical of a PLDS golden run.
func benchRoots() []ir.Value {
	si := types.NewStructInfo("N", []types.FieldInfo{
		{Name: "v", Type: types.IntType},
		{Name: "s", Type: types.StringType},
		{Name: "next", Type: &types.Type{Kind: types.Pointer}},
	})
	var head ir.Value = ir.NilVal()
	for i := 0; i < 1000; i++ {
		o := ir.NewStructObject(int64(i), si)
		o.Elems[0] = ir.IntVal(int64(i * 37))
		o.Elems[1] = ir.StringVal(fmt.Sprintf("node-%d", i))
		o.Elems[2] = head
		head = ir.RefVal(o)
	}
	arr := ir.NewArrayObject(5000, types.FloatType, 256)
	for i := range arr.Elems {
		arr.Elems[i] = ir.FloatVal(float64(i) * 1.5)
	}
	return []ir.Value{head, ir.RefVal(arr)}
}

func BenchmarkSnapshot(b *testing.B) {
	roots := benchRoots()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dcart.Snapshot(roots) == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkSnapshotDigest(b *testing.B) {
	roots := benchRoots()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if (dcart.SnapshotDigest(roots) == dcart.Digest{}) {
			b.Fatal("zero digest")
		}
	}
}
