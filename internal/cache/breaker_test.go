package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// trippedBreaker returns a breaker tripped open at a fixed instant, with an
// injected clock the test controls.
func trippedBreaker(clock *time.Time) *breaker {
	b := newBreaker()
	b.now = func() time.Time { return *clock }
	for i := 0; i < b.threshold; i++ {
		b.failure()
	}
	return b
}

// TestBreakerHalfOpenSingleProbe: once the cooldown elapses, exactly one of
// many concurrent callers is admitted as the half-open probe; every loser
// sees the breaker as still denying.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := trippedBreaker(&clock)
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state after %d failures = %s, want open", b.threshold, st)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a caller before the cooldown")
	}

	clock = clock.Add(b.cooldown) // cooldown elapses

	const callers = 64
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if n := admitted.Load(); n != 1 {
		t.Fatalf("%d concurrent callers admitted past the cooldown, want exactly 1 probe", n)
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state during probe = %s, want half-open", st)
	}
	// While the probe is in flight, later arrivals are still denied.
	if b.allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
}

// TestBreakerProbeSuccessCloses: the probe's success closes the breaker and
// traffic flows again.
func TestBreakerProbeSuccessCloses(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := trippedBreaker(&clock)
	clock = clock.Add(b.cooldown)
	if !b.allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.success()
	st, trips := b.snapshot()
	if st != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
	if trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatal("closed breaker denied a caller")
		}
	}
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the breaker for a
// fresh cooldown, and the next cooldown admits a new probe.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := trippedBreaker(&clock)
	clock = clock.Add(b.cooldown)
	if !b.allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.failure()
	st, trips := b.snapshot()
	if st != BreakerOpen {
		t.Fatalf("state after probe failure = %s, want open", st)
	}
	if trips != 2 {
		t.Fatalf("trips = %d, want 2 (initial trip + failed probe)", trips)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a caller inside the new cooldown")
	}
	clock = clock.Add(b.cooldown)
	if !b.allow() {
		t.Fatal("no probe admitted after the second cooldown")
	}
}
