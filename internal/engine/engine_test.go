package engine_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dca/internal/core"
	"dca/internal/dcart"
	"dca/internal/engine"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/sandbox"
	"dca/internal/workloads/npb"
	"dca/internal/workloads/plds"
)

// testOptions keeps the identity-test workloads affordable: two schedules,
// like the bench suite uses.
func testOptions() core.Options {
	return core.Options{Schedules: []dcart.Schedule{dcart.Reverse{}, dcart.Random{Seed: 1}}}
}

// testPrograms builds the identity-test workloads: a spread of PLDS
// programs always; the far more expensive NPB proxies and the
// long-running PLDS BFS only outside -short mode.
func testPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	progs := map[string]*ir.Program{}
	pldsNames := []string{"treeadd", "429.mcf", "ks", "em3d"}
	if !testing.Short() {
		pldsNames = append(pldsNames, "BFS")
		for _, name := range []string{"EP", "IS"} {
			p, err := npb.SpecByName(name).Compile()
			if err != nil {
				t.Fatalf("compile NPB %s: %v", name, err)
			}
			progs["npb/"+name] = p
		}
	}
	for _, name := range pldsNames {
		p, err := plds.ByName(name).Compile()
		if err != nil {
			t.Fatalf("compile PLDS %s: %v", name, err)
		}
		progs["plds/"+name] = p
	}
	return progs
}

// testWorkers returns the deduplicated worker counts under test.
func testWorkers() []int {
	ws := []int{1, 4}
	if j := runtime.GOMAXPROCS(0); j != 1 && j != 4 {
		ws = append(ws, j)
	}
	return ws
}

// assertIdentical asserts two reports are byte- and field-identical:
// verdicts, reasons, ordering, and every counter.
func assertIdentical(t *testing.T, label string, seq, par *core.Report) {
	t.Helper()
	if seq.String() != par.String() {
		t.Fatalf("%s: reports differ\n--- sequential ---\n%s--- parallel ---\n%s", label, seq, par)
	}
	if len(seq.Loops) != len(par.Loops) {
		t.Fatalf("%s: loop counts differ: %d vs %d", label, len(seq.Loops), len(par.Loops))
	}
	for i := range seq.Loops {
		// Elapsed is wall-clock, and Replays counts work performed — the
		// coverage prescreen and the verdict cache legitimately reduce it.
		// Neither is part of the verdict-identity contract; every other
		// field must match exactly.
		a, b := *seq.Loops[i], *par.Loops[i]
		a.Elapsed, b.Elapsed = 0, 0
		a.Replays, b.Replays = 0, 0
		a.DurStatic, b.DurStatic = 0, 0
		a.DurGolden, b.DurGolden = 0, 0
		a.DurReplay, b.DurReplay = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: loop %d differs:\n  seq: %+v\n  par: %+v", label, i, a, b)
		}
	}
}

// TestParallelMatchesSequential: the engine at -j 1, -j 4, and
// -j GOMAXPROCS must produce reports identical to core.Analyze on the NPB
// proxies and PLDS programs. Run under -race this also exercises the
// pool's sharing discipline.
func TestParallelMatchesSequential(t *testing.T) {
	opt := testOptions()
	workers := testWorkers()
	for name, prog := range testPrograms(t) {
		seq, err := core.Analyze(prog, opt)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, j := range workers {
			par, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: j})
			if err != nil {
				t.Fatalf("%s -j %d: %v", name, j, err)
			}
			assertIdentical(t, fmt.Sprintf("%s -j %d", name, j), seq, par)
		}
	}
}

// TestParallelMatchesSequentialUnderInjection: identity must also hold when
// the sandbox injector deterministically trips traps mid-replay — the
// engine serializes each loop's replays so the trip counter is consumed in
// sequential order.
func TestParallelMatchesSequentialUnderInjection(t *testing.T) {
	prog, err := plds.ByName("treeadd").Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := testOptions()
	cases := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"fault-at-intrinsic", func(o *core.Options) {
			o.Inject = sandbox.Inject{AtIntrinsic: 40, Kind: sandbox.Fault}
		}},
		{"panic-at-intrinsic", func(o *core.Options) {
			o.Inject = sandbox.Inject{AtIntrinsic: 25, Kind: sandbox.Panic}
		}},
		{"fault-max-trips", func(o *core.Options) {
			o.Inject = sandbox.Inject{AtIntrinsic: 40, Kind: sandbox.Fault, MaxTrips: 1}
		}},
		{"fault-targeted", func(o *core.Options) {
			o.Inject = sandbox.Inject{AtStep: 500, Kind: sandbox.Fault}
			o.InjectFn = "TreeAdd"
			o.InjectLoop = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			tc.mod(&opt)
			seq, err := core.Analyze(prog, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range []int{1, 4} {
				par, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: j})
				if err != nil {
					t.Fatalf("-j %d: %v", j, err)
				}
				assertIdentical(t, fmt.Sprintf("%s -j %d", tc.name, j), seq, par)
			}
		})
	}
}

// prescreenSrc has three loops with distinct coverage shapes: one the
// workload executes, one whose header executes but whose payload never
// runs (zero trip count), and one inside a function that is never called.
const prescreenSrc = `
func work(a []int, n int) {
	for (var i int = 0; i < n; i++) {
		a[i] = a[i] * 2 + 1;
	}
}
func dead(a []int) {
	for (var i int = 0; i < 10; i++) {
		a[i] = 0;
	}
}
func main() {
	var a []int = new [16]int;
	for (var i int = 0; i < 16; i++) {
		a[i] = i;
	}
	work(a, 16);
	work(a, 0);
	var s int = 0;
	for (var i int = 0; i < 16; i++) {
		s = s + a[i];
	}
	print(s);
}
`

// TestPrescreenSoundness: the coverage prescreen may only claim loops whose
// header never executes. A loop that is entered but whose payload never
// runs (work(a, 0) alone would give zero iterations — here the loop also
// runs with n=16, so it is fully tested) and a loop in a never-called
// function must both land on the same verdicts as the sequential path.
func TestPrescreenSoundness(t *testing.T) {
	prog, err := irbuild.Compile("prescreen.mc", prescreenSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	seq, err := core.Analyze(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "prescreen", seq, par)

	// The never-called function's loop is provable, but execution evidence
	// outranks a symbolic proof: the prescreen (parallel path) and the
	// golden run's zero-iteration exit (sequential path) both land on
	// NotExecuted, never static-proved — identical to the -no-prove path.
	deadRes := par.Result("dead", 0)
	if deadRes == nil || deadRes.Verdict != core.NotExecuted {
		t.Fatalf("dead loop: %+v", deadRes)
	}
	if deadRes.Provenance == core.ProvenanceProved {
		t.Errorf("dead loop carries static-proved provenance: %+v", deadRes)
	}

	// With the prover off the verdicts must be the same.
	opt.NoProve = true
	seq, err = core.Analyze(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err = engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "prescreen (no-prove)", seq, par)
	deadRes = par.Result("dead", 0)
	if deadRes == nil || deadRes.Verdict != core.NotExecuted {
		t.Fatalf("dead loop without prover: %+v", deadRes)
	}
}

// zeroTripSrc isolates the header-executes/payload-never case: the only
// call runs the loop with a zero trip count, so the header executes (the
// prescreen must NOT claim it) but the golden run observes zero iterations
// and reaches NotExecuted through the dynamic stage. The loop's symbolic
// bound makes it provable, and the proved path must reach the very same
// verdict: the golden run stays as the coverage witness, so the proof is
// discarded when the payload never runs.
const zeroTripSrc = `
func work(a []int, n int) {
	for (var i int = 0; i < n; i++) {
		a[i] = a[i] * 2;
	}
}
func main() {
	var a []int = new [4]int;
	work(a, 0);
	print(a[0]);
}
`

func TestPrescreenZeroTripGoesThroughGoldenRun(t *testing.T) {
	prog, err := irbuild.Compile("zerotrip.mc", zeroTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.NoProve = true
	par, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := par.Result("work", 0)
	if res == nil {
		t.Fatal("no result for work loop")
	}
	if res.Verdict != core.NotExecuted {
		t.Fatalf("verdict = %s (%s), want not-executed", res.Verdict, res.Reason)
	}
	// The loop was entered once: the golden run must have observed the
	// invocation — proof the prescreen did not short-circuit it.
	if res.Invocations == 0 {
		t.Error("zero-trip loop must reach the golden run (prescreen must not claim an executed header)")
	}
	seq, err := core.Analyze(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "zerotrip", seq, par)

	// Prover on: the proof closes, but the golden run observes zero
	// iterations, so NotExecuted still wins on both engine paths — the
	// verdict is byte-identical to the -no-prove run.
	opt.NoProve = false
	seq, err = core.Analyze(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err = engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "zerotrip (prove)", seq, par)
	res = par.Result("work", 0)
	if res == nil || res.Verdict != core.NotExecuted {
		t.Fatalf("zero-trip loop with prover: %+v", res)
	}
	if res.Provenance == core.ProvenanceProved {
		t.Errorf("zero-trip loop carries static-proved provenance: %+v", res)
	}
}

// TestNoPrescreen: disabling the prescreen must not change reports either.
func TestNoPrescreen(t *testing.T) {
	prog, err := irbuild.Compile("prescreen.mc", prescreenSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	seq, err := core.Analyze(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Workers: 4, NoPrescreen: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "no-prescreen", seq, par)
}

// TestSharedPool: several Analyze calls drawing from one pool must still
// produce identical reports (the suite-level fan-out shape).
func TestSharedPool(t *testing.T) {
	opt := testOptions()
	pool := engine.NewPool(4)
	progs := map[string]*ir.Program{}
	for _, name := range []string{"treeadd", "429.mcf", "ks"} {
		p, err := plds.ByName(name).Compile()
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = p
	}
	type named struct {
		name string
		rep  *core.Report
	}
	ch := make(chan named, len(progs))
	for name, prog := range progs {
		go func(name string, prog *ir.Program) {
			rep, err := engine.Analyze(context.Background(), prog, engine.Options{Core: opt, Pool: pool})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				ch <- named{name, nil}
				return
			}
			ch <- named{name, rep}
		}(name, prog)
	}
	got := map[string]*core.Report{}
	for range progs {
		n := <-ch
		got[n.name] = n.rep
	}
	for name, prog := range progs {
		if got[name] == nil {
			continue
		}
		seq, err := core.Analyze(prog, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "pool/"+name, seq, got[name])
	}
}
