// Package instrument implements DCA's commutativity-testing transformation
// (§IV-A3 iterator linearization and §IV-A4 commutativity-testing
// instrumentation). Given a program, a function and a loop index, it clones
// the program and rewrites the loop into:
//
//	linearized loop        — the original loop with the payload region
//	                         replaced by @rt_iterator_linearize(iter values),
//	                         so the iterator runs to completion recording
//	                         the per-iteration values the payload would see;
//	@rt_iterator_permute() — hands the recorded sequence to the runtime,
//	                         which reorders it under the active schedule;
//	driver loop            — while @rt_iterator_next() { payload(@rt_iterator_get(k)..., env) }
//	@rt_verify(live-outs)  — snapshots the loop's live-out state for
//	                         comparison against the golden execution order.
//
// Loop exits are funneled through an exit-id dispatch so multi-exit loops
// resume at the correct continuation after the driver completes.
package instrument

import (
	"fmt"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/ir"
	"dca/internal/iterrec"
	"dca/internal/outline"
	"dca/internal/pointer"
	"dca/internal/scalar"
	"dca/internal/types"
)

// Intrinsic names serviced by the DCA runtime.
const (
	RTLinearize = "rt_iterator_linearize"
	RTPermute   = "rt_iterator_permute"
	RTNext      = "rt_iterator_next"
	RTGet       = "rt_iterator_get"
	RTVerify    = "rt_verify"
)

// Instrumented is a program rewritten to test one loop.
type Instrumented struct {
	Prog    *ir.Program // instrumented clone
	Fn      *ir.Func    // function containing the rewritten loop (in Prog)
	LoopID  string
	Sep     *iterrec.Separation // separation computed on the clone
	Payload *outline.Result
	// LiveOut names the locals whose values rt_verify snapshots.
	LiveOut []*ir.Local
	// Carried classifies the loop-carried scalars of the rewritten loop
	// (computed before rewriting); the parallel executor uses it to choose
	// reduction combiners for environment fields.
	Carried []scalar.Carried
}

// Loop instruments the loopIndex-th loop (in cfg.FindLoops order) of the
// named function. The input program is not modified.
func Loop(prog *ir.Program, fnName string, loopIndex int) (*Instrumented, error) {
	// Only fnName is rewritten; every other function is shared with the
	// input program (and stays immutable), so cloning costs one function.
	clone := prog.CloneShared(fnName)
	fn := clone.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("instrument: no function %q", fnName)
	}
	g, loops := cfg.LoopsOf(fn)
	if loopIndex < 0 || loopIndex >= len(loops) {
		return nil, fmt.Errorf("instrument: %s has %d loops, index %d out of range", fnName, len(loops), loopIndex)
	}
	loop := loops[loopIndex]
	preFuncs := len(clone.Funcs)
	pd := cfg.ComputePostDom(g)
	// The clone is structurally identical to prog at this point (fn is not
	// rewritten yet), so the interprocedural points-to solve runs once per
	// program and is rebound — keys remapped, results shared — per loop.
	base := prog.AnalysisCache(func() any { return pointer.Analyze(prog) }).(*pointer.Analysis)
	pa := base.Rebind(clone, fnName)
	if pa == nil {
		pa = pointer.Analyze(clone)
	}
	lv := dataflow.ComputeLiveness(g)
	sep := iterrec.Separate(g, pd, loop, pa, lv)
	if !sep.OK {
		return nil, fmt.Errorf("instrument: %s: %s", loop.ID(), sep.Reason)
	}
	effects := lv.AnalyzeLoop(loop)

	pay, err := outline.Outline(sep)
	if err != nil {
		return nil, err
	}

	// Live-out roots: the locals live at the loop exits, plus every
	// reference-typed parameter of the containing function — heap state
	// reachable from a parameter escapes to the caller even when no local
	// is live after the loop (a map loop at the end of a void function
	// must still have its array/list state verified).
	liveOut := effects.LiveAfter.Clone()
	for _, p := range fn.Params {
		if p.Type.IsRef() {
			liveOut[p] = true
		}
	}
	inst := &Instrumented{
		Prog:    clone,
		Fn:      fn,
		LoopID:  loop.ID(),
		Sep:     sep,
		Payload: pay,
		LiveOut: liveOut.Sorted(),
		Carried: scalar.Classify(&scalar.Env{G: g, PD: pd, LV: lv}, loop),
	}
	if err := rewrite(inst, g, effects); err != nil {
		return nil, err
	}
	// Only the rewritten function and the functions minted by outlining can
	// be malformed here — the rest of the clone is a copy of an
	// already-verified program, so re-verifying it per loop is pure waste.
	if err := fn.Verify(); err != nil {
		return nil, fmt.Errorf("instrument: rewritten program is malformed: %w", err)
	}
	for _, nf := range clone.Funcs[preFuncs:] {
		if err := nf.Verify(); err != nil {
			return nil, fmt.Errorf("instrument: rewritten program is malformed: %w", err)
		}
	}
	return inst, nil
}

func rewrite(inst *Instrumented, g *cfg.Graph, effects *dataflow.LoopEffects) error {
	fn := inst.Fn
	sep := inst.Sep
	loop := sep.Loop

	// --- New locals. ---
	exitID := fn.NewTemp(types.IntType)
	envLoc := fn.NewLocal("dca_env", inst.Payload.PtrType)
	envLoc.Synth = true
	hasNext := fn.NewTemp(types.BoolType)
	var getTmps []*ir.Local
	for _, il := range sep.IterLocals {
		t := fn.NewLocal("dca_it_"+il.Name, il.Type)
		t.Synth = true
		getTmps = append(getTmps, t)
	}

	// --- New blocks. ---
	permuteB := fn.NewBlock("dca.permute")
	driverHdr := fn.NewBlock("dca.driver.header")
	driverBody := fn.NewBlock("dca.driver.body")
	verifyB := fn.NewBlock("dca.verify")

	// --- 1. Redirect loop exits through exit-id recording blocks. This
	// happens before linearization so a continuation-block suffix inherits
	// the redirected terminator.
	exitIndex := map[*ir.Block]int{}
	for i, e := range loop.Exits {
		exitIndex[e] = i
	}
	redirect := map[*ir.Block]*ir.Block{} // original exit target -> recorder
	for _, e := range loop.Exits {
		rec := fn.NewBlock("dca.exit")
		rec.Append(&ir.Mov{Dst: exitID, Src: ir.IntOp(int64(exitIndex[e]))})
		rec.Term = &ir.Goto{Target: permuteB}
		redirect[e] = rec
	}
	for _, src := range loop.ExitSrcs {
		switch t := src.Term.(type) {
		case *ir.If:
			if !loop.Blocks[t.Then] {
				t.Then = redirect[t.Then]
			}
			if !loop.Blocks[t.Else] {
				t.Else = redirect[t.Else]
			}
		case *ir.Goto:
			if !loop.Blocks[t.Target] {
				t.Target = redirect[t.Target]
			}
		}
	}

	// --- 2. Linearize: rewrite the payload region entry into a record. ---
	// Continuation target for the record.
	var contTarget *ir.Block
	if sep.Cont.Index == 0 {
		contTarget = sep.Cont.Block
	} else {
		// Split the continuation block's iterator suffix into its own block.
		suffix := fn.NewBlock("dca.lin.cont")
		suffix.Pos = sep.Cont.Block.Pos
		suffix.Instrs = append(suffix.Instrs, sep.Cont.Block.Instrs[sep.Cont.Index:]...)
		suffix.Term = sep.Cont.Block.Term
		contTarget = suffix
	}
	var recordArgs []ir.Operand
	for _, il := range sep.IterLocals {
		recordArgs = append(recordArgs, ir.LocalOp(il))
	}
	// B0: keep iterator prefix, record, jump to continuation.
	b0 := sep.B0
	prefix := append([]ir.Instr(nil), b0.Instrs[:sep.P0]...)
	prefix = append(prefix, &ir.Intrinsic{Name: RTLinearize, Args: recordArgs})
	b0.Instrs = prefix
	b0.Term = &ir.Goto{Target: contTarget}

	// --- 3. Permute block: build env, hand over to the runtime. ---
	permuteB.Append(&ir.Alloc{Dst: envLoc, Struct: inst.Payload.EnvType})
	for _, l := range sep.EnvLocals {
		idx := inst.Payload.EnvIndex[l]
		permuteB.Append(&ir.Store{
			Base:      ir.LocalOp(envLoc),
			Index:     ir.IntOp(int64(idx)),
			Src:       ir.LocalOp(l),
			FieldName: inst.Payload.EnvType.Fields[idx].Name,
		})
	}
	permuteB.Append(&ir.Intrinsic{Name: RTPermute, Args: []ir.Operand{ir.LocalOp(envLoc)}})
	permuteB.Term = &ir.Goto{Target: driverHdr}

	// --- 4. Driver loop. ---
	driverHdr.Append(&ir.Intrinsic{Dst: hasNext, Name: RTNext})
	driverHdr.Term = &ir.If{Cond: ir.LocalOp(hasNext), Then: driverBody, Else: verifyB}
	var callArgs []ir.Operand
	for k, tmp := range getTmps {
		driverBody.Append(&ir.Intrinsic{Dst: tmp, Name: RTGet, Args: []ir.Operand{ir.IntOp(int64(k))}})
		callArgs = append(callArgs, ir.LocalOp(tmp))
	}
	callArgs = append(callArgs, ir.LocalOp(envLoc))
	driverBody.Append(&ir.Call{Callee: inst.Payload.Payload.Name, Args: callArgs})
	driverBody.Term = &ir.Goto{Target: driverHdr}

	// --- 5. Verify block: restore env locals, snapshot live-outs, dispatch. ---
	for _, l := range sep.EnvLocals {
		idx := inst.Payload.EnvIndex[l]
		verifyB.Append(&ir.Load{
			Dst:       l,
			Base:      ir.LocalOp(envLoc),
			Index:     ir.IntOp(int64(idx)),
			FieldName: inst.Payload.EnvType.Fields[idx].Name,
		})
	}
	var roots []ir.Operand
	for _, l := range inst.LiveOut {
		roots = append(roots, ir.LocalOp(l))
	}
	verifyB.Append(&ir.Intrinsic{Name: RTVerify, Args: roots})
	// Exit dispatch.
	switch len(loop.Exits) {
	case 0:
		return fmt.Errorf("instrument: loop %s has no exits", inst.LoopID)
	case 1:
		verifyB.Term = &ir.Goto{Target: loop.Exits[0]}
	default:
		cur := verifyB
		for i := 0; i < len(loop.Exits)-1; i++ {
			cond := fn.NewTemp(types.BoolType)
			cur.Append(&ir.BinOp{Dst: cond, Op: ir.Eq, X: ir.LocalOp(exitID), Y: ir.IntOp(int64(i))})
			next := fn.NewBlock("dca.dispatch")
			cur.Term = &ir.If{Cond: ir.LocalOp(cond), Then: loop.Exits[i], Else: next}
			cur = next
		}
		cur.Term = &ir.Goto{Target: loop.Exits[len(loop.Exits)-1]}
	}
	_ = g
	return nil
}
