package chaos

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFile pushes one create-write-sync-rename sequence through fs — four
// eligible operations — like the cache's atomic-write path.
func writeFile(fs FS, dir, name string, data []byte) error {
	tmp, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp.Name(), filepath.Join(dir, name))
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	if err := writeFile(fs, dir, "a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}

func TestCountOpsDeterministic(t *testing.T) {
	workload := func(fs FS) {
		dir := t.TempDir()
		writeFile(fs, dir, "a", []byte("one"))
		writeFile(fs, dir, "b", []byte("two"))
	}
	n1 := CountOps(OS{}, false, workload)
	n2 := CountOps(OS{}, false, workload)
	if n1 != n2 || n1 == 0 {
		t.Fatalf("CountOps = %d then %d, want equal and non-zero", n1, n2)
	}
	// create + write + sync + rename, twice.
	if n1 != 8 {
		t.Fatalf("CountOps = %d, want 8", n1)
	}
}

func TestFaultyFailAtEachKind(t *testing.T) {
	for _, kind := range []Kind{EIO, ENOSPC, ShortWrite, TornRename} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			f := NewFaulty(OS{}, Plan{FailAt: 2, Kind: kind})
			err := writeFile(f, dir, "a", []byte("payload"))
			if err == nil {
				t.Fatal("write survived an injected fault")
			}
			if !Injected(err) {
				t.Fatalf("error %v not marked as injected", err)
			}
			if f.Faults() != 1 {
				t.Fatalf("Faults = %d, want 1", f.Faults())
			}
			// Op 2 is the data write; the final file must not exist intact.
			if data, err := os.ReadFile(filepath.Join(dir, "a")); err == nil && string(data) == "payload" {
				t.Fatal("destination holds full payload despite injected write fault")
			}
		})
	}
}

func TestFaultyShortWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{FailAt: 2, Kind: ShortWrite})
	tmp, err := f.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("0123456789")); err == nil {
		t.Fatal("short write reported success")
	}
	tmp.Close()
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) >= 10 {
		t.Fatalf("short write persisted %d bytes, want a proper prefix", len(data))
	}
}

func TestFaultyTornRenameLeavesCorruptDestination(t *testing.T) {
	dir := t.TempDir()
	// Ops: create(1) write(2) sync(3) rename(4).
	f := NewFaulty(OS{}, Plan{FailAt: 4, Kind: TornRename})
	if err := writeFile(f, dir, "a", []byte("0123456789abcdef")); err == nil {
		t.Fatal("torn rename reported success")
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal("torn rename left no destination to corrupt:", err)
	}
	if len(data) >= 16 {
		t.Fatalf("destination has %d bytes, want a torn prefix", len(data))
	}
}

func TestFaultySticky(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{FailAt: 1, Kind: EIO, Sticky: true})
	for i := 0; i < 3; i++ {
		if err := writeFile(f, dir, "a", []byte("x")); err == nil {
			t.Fatalf("write %d survived a sticky fault", i)
		}
	}
	if f.Faults() < 3 {
		t.Fatalf("Faults = %d, want >= 3 under sticky plan", f.Faults())
	}
}

func TestFaultyReadsEligibility(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	os.WriteFile(path, []byte("x"), 0o644)

	// Reads off: ReadFile is not eligible and never faults.
	f := NewFaulty(OS{}, Plan{FailAt: 1, Kind: EIO})
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("read faulted with Reads off: %v", err)
	}
	// Reads on: the first read trips.
	f = NewFaulty(OS{}, Plan{FailAt: 1, Kind: EIO, Reads: true})
	if _, err := f.ReadFile(path); !Injected(err) {
		t.Fatalf("read error = %v, want injected", err)
	}
}

func TestAlwaysFailAndHeal(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{})
	f.SetAlwaysFail(true)
	if err := writeFile(f, dir, "a", []byte("x")); err == nil {
		t.Fatal("write survived AlwaysFail")
	}
	f.SetAlwaysFail(false)
	if err := writeFile(f, dir, "a", []byte("x")); err != nil {
		t.Fatalf("write failed after heal: %v", err)
	}
}

func TestMonkeyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int64 {
		m := NewMonkey(OS{}, seed, 0.3, false)
		dir := t.TempDir()
		for i := 0; i < 20; i++ {
			writeFile(m, dir, "f", []byte("data"))
		}
		return m.Faults()
	}
	if a, b := run(7), run(7); a != b {
		t.Fatalf("same seed produced %d then %d faults", a, b)
	}
	any := false
	for seed := int64(0); seed < 8; seed++ {
		if run(seed) > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("monkey at prob 0.3 injected nothing across 8 seeds")
	}
}
