package outline_test

import (
	"strings"
	"testing"

	"dca/internal/cfg"
	"dca/internal/dataflow"
	"dca/internal/interp"
	"dca/internal/ir"
	"dca/internal/irbuild"
	"dca/internal/iterrec"
	"dca/internal/outline"
	"dca/internal/pointer"
	"dca/internal/types"
)

func outlineLoop(t *testing.T, src, fn string, idx int) (*ir.Program, *iterrec.Separation, *outline.Result) {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.Func(fn)
	g, loops := cfg.LoopsOf(f)
	sep := iterrec.Separate(g, cfg.ComputePostDom(g), loops[idx],
		pointer.Analyze(prog), dataflow.ComputeLiveness(g))
	if !sep.OK {
		t.Fatalf("not separable: %s", sep.Reason)
	}
	res, err := outline.Outline(sep)
	if err != nil {
		t.Fatalf("outline: %v", err)
	}
	return prog, sep, res
}

func TestOutlineShape(t *testing.T) {
	prog, sep, res := outlineLoop(t, `
func main() {
	var a []int = new [8]int;
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += i; a[i] = s * 0 + i; }
	print(s, a[3]);
}`, "main", 0)
	pay := prog.Func(res.Payload.Name)
	if pay == nil {
		t.Fatal("payload not registered with the program")
	}
	// Params: one per iterator local plus the env pointer.
	if len(pay.Params) != len(sep.IterLocals)+1 {
		t.Errorf("params = %d, want %d", len(pay.Params), len(sep.IterLocals)+1)
	}
	if res.EnvParam.Type.Kind != types.Pointer {
		t.Errorf("env param type = %s", res.EnvParam.Type)
	}
	if len(res.EnvType.Fields) != len(sep.EnvLocals) {
		t.Errorf("env fields = %d, want %d", len(res.EnvType.Fields), len(sep.EnvLocals))
	}
	if err := pay.Verify(); err != nil {
		t.Fatalf("payload malformed: %v", err)
	}
	// No print/intrinsics in the payload.
	for _, b := range pay.Blocks {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ir.Print, *ir.Intrinsic:
				t.Errorf("forbidden instruction in payload: %s", in)
			}
		}
	}
}

// TestOutlinedPayloadExecutes: calling the outlined function by hand
// performs one iteration's work through the env object.
func TestOutlinedPayloadExecutes(t *testing.T) {
	prog, sep, res := outlineLoop(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 8; i++) { s += i * 10; }
	print(s);
}`, "main", 0)
	it := interp.New(prog, interp.Config{})
	env := ir.NewStructObject(it.NewObjectID(), res.EnvType)
	// s starts at 5.
	env.Elems[res.EnvIndex[sep.EnvLocals[0]]] = ir.IntVal(5)
	// Run payload for i = 3.
	if _, err := it.Call(prog.Func(res.Payload.Name), []ir.Value{ir.IntVal(3), ir.RefVal(env)}, nil); err != nil {
		t.Fatalf("payload call: %v", err)
	}
	got := env.Elems[res.EnvIndex[sep.EnvLocals[0]]]
	if got.I != 35 {
		t.Errorf("env s = %v, want 35 (5 + 3*10)", got)
	}
}

func TestOutlineControlFlowPayload(t *testing.T) {
	prog, _, res := outlineLoop(t, `
func main() {
	var s int = 0;
	for (var i int = 0; i < 10; i++) {
		if (i % 2 == 0) { s += i; } else { s += 2 * i; }
	}
	print(s);
}`, "main", 0)
	pay := prog.Func(res.Payload.Name)
	// The payload keeps its internal branch.
	branches := 0
	for _, b := range pay.Blocks {
		if _, ok := b.Term.(*ir.If); ok {
			branches++
		}
	}
	if branches == 0 {
		t.Error("payload lost its internal control flow")
	}
}

func TestOutlineInnerLoopInPayload(t *testing.T) {
	prog, _, res := outlineLoop(t, `
func main() {
	var total int = 0;
	for (var i int = 0; i < 6; i++) {
		var acc int = 0;
		for (var j int = 0; j < 4; j++) { acc += i * j; }
		total += acc;
	}
	print(total);
}`, "main", 0)
	pay := prog.Func(res.Payload.Name)
	_, loops := cfg.LoopsOf(pay)
	if len(loops) != 1 {
		t.Errorf("payload must contain the inner loop, got %d loops", len(loops))
	}
}

func TestOutlineNaming(t *testing.T) {
	_, _, res := outlineLoop(t, `
func work(a []int, n int) {
	for (var i int = 0; i < n; i++) { a[i] = i; }
}
func main() { var a []int = new [4]int; work(a, 4); print(a[0]); }
`, "work", 0)
	if !strings.HasPrefix(res.Payload.Name, "payload$work$L0") {
		t.Errorf("payload name = %q", res.Payload.Name)
	}
	if !strings.HasPrefix(res.EnvType.Name, "Env$work$L0") {
		t.Errorf("env name = %q", res.EnvType.Name)
	}
}
