// Package fleet is the sharded analysis fleet: a coordinator that splits a
// program's loops across fingerprint-routed workers, a peer verdict-cache
// protocol that lets any node serve any node's previously computed
// verdicts, and an ordered run registry that streams per-loop verdicts for
// asynchronous batch runs.
//
// The fleet is built on three invariants:
//
//   - Routing is deterministic. Loops and cache keys hash onto one
//     consistent-hash ring (virtual nodes smooth the load), so every node
//     in a fleet agrees on ownership without any coordination traffic.
//   - The merged report is byte-identical to a single node's. The
//     coordinator merges per-loop verdicts back into source order (function
//     name, then loop index — exactly core.Analyze's sort) and recomputes
//     the summary from the merged loops, so N workers and 1 worker render
//     the same tables.
//   - Re-dispatch is at-least-once and safe. A dead worker's batch is
//     re-routed to its ring successors; because every loop's verdict is
//     keyed by a 128-bit analysis fingerprint, re-executing a loop on a
//     second node either hits the peer cache or recomputes the identical
//     deterministic verdict. First result wins on merge.
//
// The package deliberately does not import internal/server: wire types are
// declared here with JSON tags matching the server's schema, and the server
// imports fleet for its coordinator mode.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per physical node. 64 points per
// node keeps the worst/best load ratio within a few percent for small
// fleets without making ring construction or lookup noticeable.
const defaultVnodes = 64

// Ring is an immutable consistent-hash ring over a set of node names
// (worker base URLs in the fleet). Construction sorts the virtual-node
// points once; lookups are a binary search plus a dead-node walk. Because
// the ring is pure data derived from the node list, every fleet member
// builds an identical ring from the same configuration — ownership needs
// no coordination protocol.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with the default virtual-node count.
// Duplicate nodes are collapsed; an empty node list yields an empty ring
// whose lookups return "".
func NewRing(nodes []string) *Ring { return NewRingVnodes(nodes, defaultVnodes) }

// NewRingVnodes builds a ring with an explicit virtual-node count
// (vnodes < 1 is clamped to 1).
func NewRingVnodes(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", n, v)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node name so equal hashes (vanishingly rare but
		// possible) still order deterministically across fleet members.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the distinct nodes on the ring, in insertion order.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the number of distinct nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// hashString is the ring's point hash: 64-bit FNV-1a. The stdlib-only
// choice matters less than every node agreeing on it.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the node owning key: the first virtual node clockwise from
// the key's hash whose physical node is not in dead. It returns "" when
// the ring is empty or every node is dead.
func (r *Ring) Owner(key string, dead map[string]bool) string {
	return r.successor(hashString(key), dead)
}

// successor walks the ring clockwise from hash h, skipping virtual nodes
// whose physical node is dead. Visiting len(points) entries guarantees
// termination even when everything is dead.
func (r *Ring) successor(h uint64, dead map[string]bool) string {
	n := len(r.points)
	if n == 0 {
		return ""
	}
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < n; k++ {
		p := r.points[(i+k)%n]
		if !dead[p.node] {
			return p.node
		}
	}
	return ""
}
