package source_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dca/internal/source"
)

func TestPosForMapping(t *testing.T) {
	f := source.NewFile("t.mc", "ab\ncde\n\nf")
	cases := []struct {
		off, line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // 'a' 'b' '\n'
		{3, 2, 1}, {5, 2, 3}, // 'c' 'e'
		{7, 3, 1}, // empty line
		{8, 4, 1}, // 'f'
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %d:%d, want %d:%d", c.off, p.Line, p.Col, c.line, c.col)
		}
	}
	// Clamping.
	if p := f.PosFor(-5); p.Offset != 0 {
		t.Errorf("negative offset: %+v", p)
	}
	if p := f.PosFor(1000); p.Offset != len(f.Text) {
		t.Errorf("overflow offset: %+v", p)
	}
}

func TestLineText(t *testing.T) {
	f := source.NewFile("t.mc", "first\nsecond\nthird")
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d", f.NumLines())
	}
	if got := f.LineText(2); got != "second" {
		t.Errorf("LineText(2) = %q", got)
	}
	if got := f.LineText(3); got != "third" {
		t.Errorf("LineText(3) = %q", got)
	}
	if got := f.LineText(99); got != "" {
		t.Errorf("LineText(99) = %q", got)
	}
}

func TestDiagList(t *testing.T) {
	l := &source.DiagList{}
	if !l.Empty() || l.Err() != nil {
		t.Error("fresh list must be empty")
	}
	l.Add("a.mc", source.Pos{Line: 3, Col: 1, Offset: 10}, "bad %s", "thing")
	l.Add("a.mc", source.Pos{Line: 1, Col: 1, Offset: 0}, "first")
	if l.Empty() || l.Err() == nil {
		t.Error("list with diags must be non-empty")
	}
	l.Sort()
	if l.Diags[0].Msg != "first" {
		t.Errorf("sort order: %v", l.Diags)
	}
	msg := l.Error()
	if !strings.Contains(msg, "a.mc:3:1: bad thing") {
		t.Errorf("Error() = %q", msg)
	}
}

func TestPosString(t *testing.T) {
	if source.NoPos.IsValid() {
		t.Error("NoPos must be invalid")
	}
	if source.NoPos.String() != "-" {
		t.Errorf("NoPos string = %q", source.NoPos)
	}
	p := source.Pos{Line: 2, Col: 7, Offset: 9}
	if p.String() != "2:7" || !p.IsValid() {
		t.Errorf("pos = %q", p)
	}
	q := source.Pos{Line: 2, Col: 8, Offset: 10}
	if !p.Before(q) || q.Before(p) {
		t.Error("Before ordering broken")
	}
	if s := (source.Span{Start: p, End: q}).String(); s != "2:7-2:8" {
		t.Errorf("span = %q", s)
	}
}

// Property: PosFor is consistent — the computed line's start offset never
// exceeds the queried offset.
func TestPosForConsistent(t *testing.T) {
	f := func(text string, off uint16) bool {
		file := source.NewFile("q.mc", text)
		o := int(off)
		p := file.PosFor(o)
		return p.Line >= 1 && p.Col >= 1 && p.Offset >= 0 && p.Offset <= len(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
