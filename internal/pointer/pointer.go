// Package pointer implements a flow-insensitive, field-sensitive,
// interprocedural Andersen-style points-to analysis over the IR, plus
// mod/ref summaries per function. Iterator recognition uses its memory
// regions — (allocation site, field) pairs — to close the iterator slice
// over memory dependences, which is what lets DCA separate worklist
// iterators (pop affecting the loop condition through the heap) from
// payload code.
package pointer

import (
	"fmt"
	"sort"

	"dca/internal/ir"
)

// Site is a heap allocation site (one per Alloc instruction).
type Site struct {
	ID    int
	Alloc *ir.Alloc
	Fn    *ir.Func
}

func (s *Site) String() string {
	if s.Alloc.Struct != nil {
		return fmt.Sprintf("site%d(%s in %s)", s.ID, s.Alloc.Struct.Name, s.Fn.Name)
	}
	return fmt.Sprintf("site%d([]%s in %s)", s.ID, s.Alloc.Elem, s.Fn.Name)
}

// ArrayField is the pseudo-field index used for array element accesses
// (elements are collapsed into one region per site).
const ArrayField = -1

// Region is an abstract memory location: one field of one allocation site.
type Region struct {
	Site  *Site
	Field int
}

func (r Region) String() string {
	if r.Field == ArrayField {
		return fmt.Sprintf("%s[*]", r.Site)
	}
	return fmt.Sprintf("%s.f%d", r.Site, r.Field)
}

// RegionSet is a set of regions.
type RegionSet map[Region]bool

// Add inserts r, reporting whether it was new.
func (s RegionSet) Add(r Region) bool {
	if s[r] {
		return false
	}
	s[r] = true
	return true
}

// AddAll inserts all of t, reporting growth.
func (s RegionSet) AddAll(t RegionSet) bool {
	grew := false
	for r := range t {
		if s.Add(r) {
			grew = true
		}
	}
	return grew
}

// Intersects reports whether the two sets share a region.
func (s RegionSet) Intersects(t RegionSet) bool {
	if len(t) < len(s) {
		s, t = t, s
	}
	for r := range s {
		if t[r] {
			return true
		}
	}
	return false
}

// Sorted returns a deterministic ordering for reports.
func (s RegionSet) Sorted() []Region {
	out := make([]Region, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site.ID != out[j].Site.ID {
			return out[i].Site.ID < out[j].Site.ID
		}
		return out[i].Field < out[j].Field
	})
	return out
}

type siteSet map[*Site]bool

func (s siteSet) addAll(t siteSet) bool {
	grew := false
	for x := range t {
		if !s[x] {
			s[x] = true
			grew = true
		}
	}
	return grew
}

// ModRef summarizes the memory effects of one function, including its
// transitive callees.
type ModRef struct {
	Reads  RegionSet
	Writes RegionSet
}

// Analysis holds the points-to and mod/ref results for a program.
type Analysis struct {
	Prog  *ir.Program
	Sites []*Site
	// pts maps each ref-typed local to the sites it may point to.
	pts map[*ir.Local]siteSet
	// heap maps each region to the sites stored in it.
	heap map[Region]siteSet
	// Summaries per function (transitive).
	Summaries        map[*ir.Func]*ModRef
	siteOf           map[*ir.Alloc]*Site
	funcs            map[string]*ir.Func
	fieldInsensitive bool
}

// callee resolves a call target by name. Program.Func is a linear scan and
// the solvers resolve the same names on every fixed-point pass, so the table
// is built once up front.
func (a *Analysis) callee(name string) *ir.Func { return a.funcs[name] }

// Analyze runs the field-sensitive analysis over the whole program.
func Analyze(prog *ir.Program) *Analysis { return analyze(prog, false) }

// AnalyzeFieldInsensitive collapses every field of a site into one region
// (object granularity). It exists for the ablation study: at object
// granularity a worklist pop and the payload's field traffic share regions,
// so iterator/payload separation degrades — quantifying why the
// field-sensitive regions are load-bearing for DCA.
func AnalyzeFieldInsensitive(prog *ir.Program) *Analysis { return analyze(prog, true) }

func analyze(prog *ir.Program, fieldInsensitive bool) *Analysis {
	a := &Analysis{
		Prog:             prog,
		fieldInsensitive: fieldInsensitive,
		pts:              map[*ir.Local]siteSet{},
		heap:             map[Region]siteSet{},
		Summaries:        map[*ir.Func]*ModRef{},
		siteOf:           map[*ir.Alloc]*Site{},
		funcs:            make(map[string]*ir.Func, len(prog.Funcs)),
	}
	for _, fn := range prog.Funcs {
		a.funcs[fn.Name] = fn
	}
	// Collect allocation sites.
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if al, ok := in.(*ir.Alloc); ok {
					s := &Site{ID: len(a.Sites), Alloc: al, Fn: fn}
					a.Sites = append(a.Sites, s)
					a.siteOf[al] = s
				}
			}
		}
	}
	a.solvePointsTo()
	a.solveModRef()
	return a
}

// Rebind adapts the analysis to a program built with ir.Program.CloneShared
// from a.Prog: every function is shared except fnName, which was replaced by
// a structurally identical (not yet rewritten) copy. Flow-insensitive
// points-to facts depend only on program structure, so the solution carries
// over verbatim — only the keys touching the replaced function need remapping
// (locals by index, allocation sites by traversal order, the function's
// summary by identity). All result sets are shared with the receiver, which
// is not mutated and stays valid; the returned view is cheap enough to build
// per instrumented clone, replacing a full interprocedural re-solve.
//
// Returns nil when the clone does not line up with the receiver's program
// (different function, local count, or alloc count); callers fall back to a
// full Analyze then.
func (a *Analysis) Rebind(clone *ir.Program, fnName string) *Analysis {
	orig := a.funcs[fnName]
	g := clone.Func(fnName)
	if orig == nil || g == nil || g == orig ||
		len(orig.Locals) != len(g.Locals) || len(orig.Blocks) != len(g.Blocks) {
		return nil
	}
	b := &Analysis{
		Prog:             clone,
		Sites:            a.Sites,
		pts:              make(map[*ir.Local]siteSet, len(a.pts)+len(g.Locals)),
		heap:             a.heap,
		Summaries:        make(map[*ir.Func]*ModRef, len(a.Summaries)+1),
		siteOf:           make(map[*ir.Alloc]*Site, len(a.siteOf)*2),
		funcs:            make(map[string]*ir.Func, len(a.funcs)),
		fieldInsensitive: a.fieldInsensitive,
	}
	for k, v := range a.pts {
		b.pts[k] = v
	}
	for k, v := range a.Summaries {
		b.Summaries[k] = v
	}
	for k, v := range a.siteOf {
		b.siteOf[k] = v
	}
	for k, v := range a.funcs {
		b.funcs[k] = v
	}
	b.funcs[fnName] = g
	b.Summaries[g] = a.Summaries[orig]
	for i, l := range orig.Locals {
		if s, ok := a.pts[l]; ok {
			b.pts[g.Locals[i]] = s
		}
	}
	// ir.Func.Clone preserves block and instruction order, so the two alloc
	// streams line up one-to-one.
	oa, ga := collectAllocs(orig), collectAllocs(g)
	if len(oa) != len(ga) {
		return nil
	}
	for i := range oa {
		s := a.siteOf[oa[i]]
		if s == nil {
			return nil
		}
		b.siteOf[ga[i]] = s
	}
	return b
}

func collectAllocs(fn *ir.Func) []*ir.Alloc {
	var out []*ir.Alloc
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if al, ok := in.(*ir.Alloc); ok {
				out = append(out, al)
			}
		}
	}
	return out
}

func (a *Analysis) ptsOf(l *ir.Local) siteSet {
	s, ok := a.pts[l]
	if !ok {
		s = siteSet{}
		a.pts[l] = s
	}
	return s
}

func (a *Analysis) heapOf(r Region) siteSet {
	s, ok := a.heap[r]
	if !ok {
		s = siteSet{}
		a.heap[r] = s
	}
	return s
}

func (a *Analysis) fieldKey(in ir.Instr) int {
	if a.fieldInsensitive {
		return ArrayField
	}
	return fieldKey(in)
}

func fieldKey(in ir.Instr) int {
	switch i := in.(type) {
	case *ir.Load:
		if i.FieldName == "" {
			return ArrayField
		}
		return int(i.Index.Const.I)
	case *ir.Store:
		if i.FieldName == "" {
			return ArrayField
		}
		return int(i.Index.Const.I)
	}
	return ArrayField
}

func (a *Analysis) solvePointsTo() {
	// Gather per-function return locals/operands.
	returns := map[*ir.Func][]ir.Operand{}
	for _, fn := range a.Prog.Funcs {
		for _, b := range fn.Blocks {
			if r, ok := b.Term.(*ir.Ret); ok && r.Val != nil {
				returns[fn] = append(returns[fn], *r.Val)
			}
		}
	}
	opSites := func(o ir.Operand) siteSet {
		if o.Local != nil {
			return a.ptsOf(o.Local)
		}
		return nil // constants (incl. nil) point nowhere
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range a.Prog.Funcs {
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					switch i := in.(type) {
					case *ir.Alloc:
						d := a.ptsOf(i.Dst)
						if !d[a.siteOf[i]] {
							d[a.siteOf[i]] = true
							changed = true
						}
					case *ir.Mov:
						if i.Dst.Type.IsRef() {
							if a.ptsOf(i.Dst).addAll(opSites(i.Src)) {
								changed = true
							}
						}
					case *ir.Load:
						if i.Dst.Type.IsRef() {
							f := a.fieldKey(i)
							d := a.ptsOf(i.Dst)
							for s := range opSites(i.Base) {
								if d.addAll(a.heapOf(Region{Site: s, Field: f})) {
									changed = true
								}
							}
						}
					case *ir.Store:
						src := opSites(i.Src)
						if len(src) == 0 {
							continue
						}
						f := a.fieldKey(i)
						for s := range opSites(i.Base) {
							if a.heapOf(Region{Site: s, Field: f}).addAll(src) {
								changed = true
							}
						}
					case *ir.Call:
						if i.Builtin {
							continue // builtins neither store nor return refs
						}
						callee := a.callee(i.Callee)
						if callee == nil {
							continue
						}
						for k, arg := range i.Args {
							if k < len(callee.Params) && callee.Params[k].Type.IsRef() {
								if a.ptsOf(callee.Params[k]).addAll(opSites(arg)) {
									changed = true
								}
							}
						}
						if i.Dst != nil && i.Dst.Type.IsRef() {
							d := a.ptsOf(i.Dst)
							for _, r := range returns[callee] {
								if d.addAll(opSites(r)) {
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}
}

func (a *Analysis) solveModRef() {
	for _, fn := range a.Prog.Funcs {
		a.Summaries[fn] = &ModRef{Reads: RegionSet{}, Writes: RegionSet{}}
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range a.Prog.Funcs {
			mr := a.Summaries[fn]
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					switch i := in.(type) {
					case *ir.Load:
						for _, r := range a.AccessRegions(i) {
							if mr.Reads.Add(r) {
								changed = true
							}
						}
					case *ir.Store:
						for _, r := range a.AccessRegions(i) {
							if mr.Writes.Add(r) {
								changed = true
							}
						}
					case *ir.Call:
						if i.Builtin {
							continue
						}
						callee := a.callee(i.Callee)
						if callee == nil {
							continue
						}
						cs := a.Summaries[callee]
						if mr.Reads.AddAll(cs.Reads) {
							changed = true
						}
						if mr.Writes.AddAll(cs.Writes) {
							changed = true
						}
					}
				}
			}
		}
	}
}

// AccessRegions returns the regions a Load or Store may touch.
func (a *Analysis) AccessRegions(in ir.Instr) []Region {
	var base ir.Operand
	switch i := in.(type) {
	case *ir.Load:
		base = i.Base
	case *ir.Store:
		base = i.Base
	default:
		return nil
	}
	if base.Local == nil {
		return nil
	}
	f := a.fieldKey(in)
	var out []Region
	for s := range a.ptsOf(base.Local) {
		out = append(out, Region{Site: s, Field: f})
	}
	return out
}

// PointsTo returns the sites a local may reference.
func (a *Analysis) PointsTo(l *ir.Local) []*Site {
	var out []*Site
	for s := range a.ptsOf(l) {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CallEffects returns the transitive mod/ref summary of a call instruction
// (nil for builtins and unknown callees, which are effect-free by
// construction in MiniC).
func (a *Analysis) CallEffects(c *ir.Call) *ModRef {
	if c.Builtin {
		return nil
	}
	callee := a.callee(c.Callee)
	if callee == nil {
		return nil
	}
	return a.Summaries[callee]
}
