package diff

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dca/internal/core"
	"dca/internal/fuzzgen"
)

// TestCampaignHealthy runs a small real campaign end to end — generator,
// DCA, parallel oracle, all five baselines, corpus plumbing — and demands
// zero hard violations: no soundness bug, no mislabeled production, no
// parallel-vs-sequential divergence.
func TestCampaignHealthy(t *testing.T) {
	var log strings.Builder
	stats, failures, err := RunCampaign(nil, CampaignOptions{
		Seed:      1,
		Count:     40,
		Jobs:      4,
		Check:     Options{Baselines: true},
		CorpusDir: t.TempDir(),
		Log:       &log,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if n := stats.ViolationCount(); n != 0 {
		t.Fatalf("campaign found %d violations (want 0):\n%s", n, log.String())
	}
	if len(failures) != 0 {
		t.Fatalf("campaign returned %d failures with zero violation count", len(failures))
	}
	if got := stats.Completed + stats.Trapped; got != stats.Requested {
		t.Errorf("completed %d + trapped %d != requested %d", stats.Completed, stats.Trapped, stats.Requested)
	}
	if stats.Completed == 0 {
		t.Fatal("no program completed analysis")
	}
	if stats.Verdicts[core.Commutative.String()] == 0 {
		t.Error("no loop was ever found commutative")
	}
	if stats.Labels[fuzzgen.LabelNonCommutative.String()] == 0 {
		t.Error("no non-commutative production was generated — soundness check never exercised")
	}
	// Every definitive verdict on a labeled loop must agree with the label.
	for lv, n := range stats.LabelVerdicts {
		parts := strings.SplitN(lv, "/", 2)
		if parts[0] == fuzzgen.LabelNonCommutative.String() && parts[1] == core.Commutative.String() && n > 0 {
			t.Errorf("confusion cell %s = %d", lv, n)
		}
	}
	if stats.ParallelChecked == 0 {
		t.Error("parallel oracle never ran to completion on any loop")
	}
	if stats.ProvedLoops == 0 {
		t.Error("static prover never decided a loop — prover-divergence check never exercised")
	}
	for _, name := range BaselineNames {
		if stats.Baselines[name] == nil {
			t.Errorf("baseline %s produced no stats", name)
		}
	}
	if !strings.Contains(log.String(), "campaign seed=1") {
		t.Error("campaign header does not print the seed")
	}
}

// TestCampaignDeterministic: identical options → identical aggregate
// counts, regardless of worker interleaving.
func TestCampaignDeterministic(t *testing.T) {
	run := func() *Stats {
		s, _, err := RunCampaign(nil, CampaignOptions{Seed: 7, Count: 12, Jobs: 3})
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		s.Seconds, s.ProgramsPerSec = 0, 0
		return s
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign stats differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestCheckTrapSkips: a program that blows its budget is counted as a
// trap and produces no violations — trapping programs degrade gracefully.
func TestCheckTrapSkips(t *testing.T) {
	res := Check(fuzzgen.New(3), Options{MaxSteps: 50, Timeout: time.Second})
	if !res.Trapped {
		t.Fatal("expected a budget trap with MaxSteps=50")
	}
	if res.TrapKind == "" {
		t.Error("trap kind not classified")
	}
	if len(res.Violations) != 0 {
		t.Errorf("trapped program reported %d violations", len(res.Violations))
	}
}

// TestCampaignWallCap: an already-expired wall clock stops dispatch
// immediately and is reported, not an error.
func TestCampaignWallCap(t *testing.T) {
	stats, _, err := RunCampaign(nil, CampaignOptions{Seed: 1, Count: 500, Jobs: 2, Wall: time.Nanosecond})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !stats.WallCapped {
		t.Error("wall cap not reported")
	}
	if done := stats.Completed + stats.Trapped; done >= stats.Requested {
		t.Errorf("wall cap did not stop dispatch: %d of %d ran", done, stats.Requested)
	}
}

// TestMergeStatsCountsViolations: the aggregate classifies each violation
// kind into its own hard-failure counter.
func TestMergeStatsCountsViolations(t *testing.T) {
	s := &Stats{TrapKinds: map[string]int{}, Verdicts: map[string]int{},
		Labels: map[string]int{}, LabelVerdicts: map[string]int{}, Baselines: map[string]*BaselineStat{}}
	mergeStats(s, &Result{Violations: []Violation{
		{Kind: KindSoundness}, {Kind: KindLabel}, {Kind: KindParallelDiv}, {Kind: KindSoundness},
		{Kind: KindProverDiv},
	}})
	if s.SoundnessViolations != 2 || s.LabelViolations != 1 || s.ParallelDivergences != 1 || s.ProverDivergences != 1 {
		t.Errorf("got soundness=%d label=%d pardiv=%d provdiv=%d",
			s.SoundnessViolations, s.LabelViolations, s.ParallelDivergences, s.ProverDivergences)
	}
	if s.ViolationCount() != 5 {
		t.Errorf("ViolationCount = %d, want 5", s.ViolationCount())
	}
}

// TestHandleFailurePlumbing drives the minimize→fingerprint→corpus path
// with a fabricated violation on a real labeled loop: the repro line names
// the seed, the corpus receives exactly one entry, and an isomorphic
// second failure deduplicates against it.
func TestHandleFailurePlumbing(t *testing.T) {
	seed := int64(11)
	p := fuzzgen.New(seed)
	var fn string
	for name := range p.Labels() {
		fn = name
		break
	}
	if fn == "" {
		t.Fatal("seed 11 generated no labeled loops")
	}
	v := Violation{Kind: KindSoundness, Fn: fn, Label: fuzzgen.LabelNonCommutative, Verdict: "commutative"}
	dir := t.TempDir()
	var log strings.Builder
	logf := func(format string, args ...any) {
		log.WriteString(strings.TrimSpace(strings.ReplaceAll(format, "%", "")) + "\n")
		_ = args
	}
	opt := CampaignOptions{Seed: 1, CorpusDir: dir, MinimizeChecks: 3, Check: Options{}}
	f := handleFailure(seed, v, opt, logf)
	if f.Repro != "dca fuzz -seed 11 -count 1" {
		t.Errorf("repro line = %q", f.Repro)
	}
	if f.Minimized == nil || f.Source == "" {
		t.Fatal("failure carries no minimized program")
	}
	if f.CorpusPath == "" {
		t.Fatal("corpus entry not written")
	}
	entries, err := fuzzgen.LoadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("corpus entries = %d (err %v), want 1", len(entries), err)
	}
	if entries[0].Kind != KindSoundness || entries[0].Seed != seed || entries[0].Repro != f.Repro {
		t.Errorf("corpus entry mismatch: %+v", entries[0])
	}
	f2 := handleFailure(seed, v, opt, logf)
	if !f2.Deduped {
		t.Error("isomorphic second failure was not deduplicated")
	}
}

// TestLoopFingerprintStable: the dedup key is a pure function of the
// program text and loop identity.
func TestLoopFingerprintStable(t *testing.T) {
	p := fuzzgen.New(5)
	src := p.Render()
	var fn string
	for name := range p.Labels() {
		fn = name
		break
	}
	a, err := LoopFingerprint(src, fn, 0)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	b, _ := LoopFingerprint(src, fn, 0)
	if a != b || a == "" {
		t.Errorf("fingerprint unstable or empty: %q vs %q", a, b)
	}
}
