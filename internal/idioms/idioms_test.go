package idioms_test

import (
	"testing"

	"dca/internal/idioms"
	"dca/internal/irbuild"
)

func analyze(t *testing.T, src string) *idioms.Report {
	t.Helper()
	prog, err := irbuild.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return idioms.Analyze(prog)
}

func expect(t *testing.T, rep *idioms.Report, fn string, idx int, want bool) {
	t.Helper()
	v := rep.Verdict(fn, idx)
	if v == nil {
		t.Fatalf("no verdict for %s/L%d", fn, idx)
	}
	if v.Parallel != want {
		t.Errorf("%s/L%d = %v (idioms %v, reasons %v), want %v", fn, idx, v.Parallel, v.Idioms, v.Reasons, want)
	}
}

// TestHistogramDetected: the indirect-subscript histogram is Idioms'
// signature capability — no other static tool flags it.
func TestHistogramDetected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [64]int;
	var h []int = new [8]int;
	for (var i int = 0; i < 64; i++) { h[b[i]] += 1; }
	print(h[0]);
}`)
	expect(t, rep, "main", 0, true)
	v := rep.Verdict("main", 0)
	has := false
	for _, k := range v.Idioms {
		if k == "histogram" {
			has = true
		}
	}
	if !has {
		t.Errorf("expected histogram idiom, got %v", v.Idioms)
	}
}

func TestScalarReductionDetected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s += a[i] * a[i]; }
	print(s);
}`)
	expect(t, rep, "main", 0, true)
}

func TestMinMaxDetected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var m int = 0;
	for (var i int = 0; i < 64; i++) {
		if (a[i] > m) { m = a[i]; }
	}
	print(m);
}`)
	expect(t, rep, "main", 0, true)
}

// TestPlainDoallNotFlagged: no idiom present — Idioms does not report plain
// parallel loops (hence its small counts in Table III).
func TestPlainDoallNotFlagged(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	for (var i int = 0; i < 64; i++) { a[i] = i; }
	print(a[0]);
}`)
	expect(t, rep, "main", 0, false)
}

// TestIdiomWithRecurrenceRejected: the idiom is present but another carried
// dependence poisons the loop.
func TestIdiomWithRecurrenceRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var a []int = new [64]int;
	var s int = 0;
	for (var i int = 1; i < 64; i++) {
		s += a[i];
		a[i] = a[i-1] + 1;
	}
	print(s);
}`)
	expect(t, rep, "main", 0, false)
}

func TestPLDSReductionRejected(t *testing.T) {
	rep := analyze(t, `
struct Node { val int; next *Node; }
func main() {
	var head *Node = new Node;
	var p *Node = head;
	var s int = 0;
	while (p != nil) { s += p->val; p = p->next; }
	print(s);
}`)
	expect(t, rep, "main", 0, false)
}

func TestIOHistogramRejected(t *testing.T) {
	rep := analyze(t, `
func main() {
	var b []int = new [8]int;
	var h []int = new [8]int;
	for (var i int = 0; i < 8; i++) {
		h[b[i]] += 1;
		print(i);
	}
}`)
	expect(t, rep, "main", 0, false)
}
