package bench_test

import (
	"testing"

	"dca/internal/bench"
	"dca/internal/cache"
	"dca/internal/core"
	"dca/internal/engine"
	"dca/internal/workloads/npb"
)

// TestWarmCacheIdentity is the warm-cache acceptance test on the small NPB
// proxies: a second run against the cache populated by the first must
// reproduce every verdict table byte-for-byte while skipping at least 90%
// of the dynamic-stage replays.
func TestWarmCacheIdentity(t *testing.T) {
	c, err := cache.Open("", 0, core.CacheRecordVersion)
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.NewPool(2)
	run := func() *bench.Suite {
		s := &bench.Suite{}
		for _, name := range []string{"EP", "IS"} {
			r, err := bench.RunNPBOptions(npb.SpecByName(name), pool, c)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			s.Results = append(s.Results, r)
		}
		return s
	}

	cold := run()
	if cold.Replays() == 0 {
		t.Fatal("cold run performed no replays")
	}
	if cold.CachedLoops() != 0 {
		t.Fatalf("cold run served %d loops from an empty cache", cold.CachedLoops())
	}

	warm := run()
	for _, tab := range []struct{ name, c, w string }{
		{"TableI", cold.TableI(), warm.TableI()},
		{"TableIII", cold.TableIII(), warm.TableIII()},
		{"TableIV", cold.TableIV(), warm.TableIV()},
	} {
		if tab.c != tab.w {
			t.Errorf("%s diverged on the warm run:\n--- cold ---\n%s--- warm ---\n%s", tab.name, tab.c, tab.w)
		}
	}

	skip := 1 - float64(warm.Replays())/float64(cold.Replays())
	if skip < 0.9 {
		t.Errorf("warm run skipped only %.0f%% of replays (%d -> %d), want >= 90%%",
			skip*100, cold.Replays(), warm.Replays())
	}
	if warm.CachedLoops() == 0 {
		t.Error("warm run served no loops from the cache")
	}
}
