package fleet

import (
	"sync"
	"time"
)

// NodeState is one step of the fleet's node lifecycle:
//
//	live ──(dispatch failures exhaust NodeRetries)──▶ suspect
//	suspect ──(probe fails)──▶ dead ──(probe fails)──▶ dead (longer backoff)
//	suspect/dead ──(probe in flight)──▶ probing
//	probing ──(probe succeeds)──▶ live
//
// Only live nodes are in dispatch rotation. Suspect and dead differ only
// in how aggressively the prober revisits them: a suspect node failed a
// dispatch moments ago and is probed on the short initial backoff; a dead
// node has also failed probes, so its backoff doubles (with jitter) up to
// the cap. Neither state is permanent — that is the whole point.
type NodeState int32

const (
	NodeLive NodeState = iota
	NodeSuspect
	NodeDead
	NodeProbing
)

var nodeStateNames = [...]string{"live", "suspect", "dead", "probing"}

func (s NodeState) String() string { return nodeStateNames[s] }

// nodeHealth is one node's lifecycle record.
type nodeHealth struct {
	state NodeState
	// backoff is the current probe backoff; it doubles on each failed
	// probe and resets when the node rejoins.
	backoff time.Duration
	// next is the earliest instant the prober should revisit this node.
	next time.Time
	// preProbe remembers whether a probing node came from suspect or dead,
	// so a failed probe can demote suspect → dead.
	preProbe NodeState
}

// Membership tracks the lifecycle state of every fleet node. It is owned
// by a Coordinator and outlives individual runs: a node that died during
// one analysis is probed back into rotation for — or even during — the
// next, instead of staying dead until a process restart.
type Membership struct {
	mu    sync.Mutex
	nodes map[string]*nodeHealth

	probeBase time.Duration // initial probe backoff
	probeCap  time.Duration // backoff ceiling
	jitter    func(int64) int64
}

// newMembership builds an all-live membership over nodes. probeBase and
// probeCap bound the probe backoff; jitter is the coordinator's injectable
// randomness source.
func newMembership(nodes []string, probeBase, probeCap time.Duration, jitter func(int64) int64) *Membership {
	m := &Membership{
		nodes:     make(map[string]*nodeHealth, len(nodes)),
		probeBase: probeBase,
		probeCap:  probeCap,
		jitter:    jitter,
	}
	for _, n := range nodes {
		m.nodes[n] = &nodeHealth{state: NodeLive}
	}
	return m
}

// State returns a node's current lifecycle state (unknown nodes read as
// dead — they are not in rotation either way).
func (m *Membership) State(node string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[node]; ok {
		return h.state
	}
	return NodeDead
}

// Excluded returns the set of nodes currently out of dispatch rotation —
// everything not live. The ring's Owner lookup takes it as its dead set.
// The returned map is a fresh copy; callers may hold it across a round.
func (m *Membership) Excluded() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool)
	for n, h := range m.nodes {
		if h.state != NodeLive {
			out[n] = true
		}
	}
	return out
}

// Counts returns how many nodes sit in each lifecycle state, in state
// order (live, suspect, dead, probing) — the node-state gauges sample it.
func (m *Membership) Counts() [4]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var c [4]int
	for _, h := range m.nodes {
		c[h.state]++
	}
	return c
}

// Suspect takes a node out of rotation after its dispatch retries were
// exhausted, reporting whether the node actually transitioned. The prober
// revisits it after the initial backoff. Probing nodes stay probing (the
// in-flight probe will settle the state); already suspect or dead nodes
// keep their (longer) schedule.
func (m *Membership) Suspect(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.nodes[node]
	if !ok || h.state != NodeLive {
		return false
	}
	h.state = NodeSuspect
	h.backoff = m.probeBase
	h.next = time.Now().Add(m.jittered(h.backoff))
	return true
}

// MarkLive returns a node to dispatch rotation and resets its probe
// backoff — a successful probe, or a successful dispatch that doubled as
// one. It reports whether the node actually transitioned (false when it
// was live already), so callers count rejoins exactly once.
func (m *Membership) MarkLive(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.nodes[node]
	if !ok || h.state == NodeLive {
		return false
	}
	h.state = NodeLive
	h.backoff = 0
	h.next = time.Time{}
	return true
}

// due returns the out-of-rotation nodes whose next-probe instant has
// passed, marking each probing so concurrent probers never double-probe.
func (m *Membership) due(now time.Time) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n, h := range m.nodes {
		if (h.state == NodeSuspect || h.state == NodeDead) && !h.next.After(now) {
			h.preProbe = h.state
			h.state = NodeProbing
			out = append(out, n)
		}
	}
	return out
}

// probeFailed settles a probing node after a failed probe: it becomes
// dead, its backoff doubles (jittered) up to the cap, and the prober will
// revisit it then.
func (m *Membership) probeFailed(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.nodes[node]
	if !ok || h.state != NodeProbing {
		return
	}
	h.state = NodeDead
	if h.backoff <= 0 {
		h.backoff = m.probeBase
	} else if h.backoff < m.probeCap {
		h.backoff *= 2
		if h.backoff > m.probeCap {
			h.backoff = m.probeCap
		}
	}
	h.next = time.Now().Add(m.jittered(h.backoff))
}

// jittered spreads d across [d, 2d) so a fleet of probers revisiting the
// same dead node cannot re-arrive in lockstep.
func (m *Membership) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + time.Duration(m.jitter(int64(d)))
}
