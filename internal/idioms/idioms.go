// Package idioms reimplements a constraint-based reduction and histogram
// detector in the style of Ginsbach & O'Boyle [51]: it searches loops for
// scalar reduction recurrences (including conditional min/max) and memory
// reduction idioms "location op= expr" — crucially including indirect
// subscripts such as histograms h[key[i]] += 1, which defeat the affine
// tools — and reports a loop parallelizable when such an idiom is present
// and the rest of the loop carries no other dependence.
package idioms

import (
	"fmt"

	"dca/internal/affine"
	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/pointer"
	"dca/internal/polly"
	"dca/internal/purity"
	"dca/internal/scalar"
)

// LoopKey aliases the shared static-loop key.
type LoopKey = polly.LoopKey

// Verdict extends the static verdict with the matched idioms.
type Verdict struct {
	Key      LoopKey
	Parallel bool
	// Idioms names the matched idiom kinds ("scalar-reduction", "minmax",
	// "histogram").
	Idioms  []string
	Reasons []string
}

// Report holds Idioms' verdicts for one program.
type Report struct {
	Prog     *ir.Program
	Verdicts map[LoopKey]*Verdict
}

// Parallelizable counts loops reported parallel.
func (r *Report) Parallelizable() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Parallel {
			n++
		}
	}
	return n
}

// Verdict returns the verdict for fn's index-th loop, or nil.
func (r *Report) Verdict(fn string, index int) *Verdict {
	return r.Verdicts[LoopKey{Fn: fn, Index: index}]
}

// Analyze statically classifies every loop of the program.
func Analyze(prog *ir.Program) *Report {
	rep := &Report{Prog: prog, Verdicts: map[LoopKey]*Verdict{}}
	pa := pointer.Analyze(prog)
	pur := purity.Analyze(prog)
	for _, fn := range prog.Funcs {
		env := affine.NewEnv(fn)
		groups := affine.MemReductionGroups(fn)
		for _, loop := range env.Loops {
			v := &Verdict{Key: LoopKey{Fn: fn.Name, Index: loop.Index}}
			rep.Verdicts[v.Key] = v
			check(env, pa, pur, groups, loop, v)
		}
	}
	return rep
}

func check(env *affine.Env, pa *pointer.Analysis, pur *purity.Info, groups map[ir.Instr]int, loop *cfg.Loop, v *Verdict) {
	// --- Find idiom instances. ---
	carried := scalar.Classify(env.Env, loop)
	for _, c := range carried {
		switch c.Class {
		case scalar.Reduction:
			v.Idioms = append(v.Idioms, "scalar-reduction")
		case scalar.MinMax:
			v.Idioms = append(v.Idioms, "minmax")
		}
	}
	groupInstrs := map[ir.Instr]bool{}
	haveHistogram := false
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			if _, ok := groups[in]; ok {
				groupInstrs[in] = true
				haveHistogram = true
			}
		}
	}
	if haveHistogram {
		v.Idioms = append(v.Idioms, "histogram")
	}
	if len(v.Idioms) == 0 {
		v.Reasons = []string{"no reduction or histogram idiom in loop"}
		return
	}

	// --- The rest of the loop must be clean. ---
	info := env.Info[loop]
	if !info.OK {
		v.Reasons = append(v.Reasons, "idiom host loop not countable: "+info.Why)
		return
	}
	if len(loop.Exits) != 1 {
		v.Reasons = append(v.Reasons, "multiple loop exits")
	}
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Print:
				v.Reasons = append(v.Reasons, "I/O in loop")
			case *ir.Call:
				if !i.Builtin && (!pur.Pure(i.Callee) || pur.Allocates[i.Callee]) {
					v.Reasons = append(v.Reasons, fmt.Sprintf("call to impure function %q", i.Callee))
				}
			case *ir.Store:
				if i.FieldName != "" && !groupInstrs[in] {
					v.Reasons = append(v.Reasons, "store through pointer field")
				}
			case *ir.Alloc:
				v.Reasons = append(v.Reasons, "allocation in loop")
			}
		}
	}
	for _, c := range carried {
		if c.Class == scalar.Fatal {
			v.Reasons = append(v.Reasons, fmt.Sprintf("unresolvable loop-carried scalar %q", c.Local.Name))
		}
	}
	if len(v.Reasons) > 0 {
		return
	}
	// Memory: accesses outside the reduction groups must be affine and
	// dependence-free; group accesses are exempt, but their target object
	// must not be touched by non-group accesses (checked via alias pairs
	// below — a group/non-group pair is not skipped).
	var accs []affine.Access
	for _, a := range env.Accesses(loop) {
		if a.Field != "" && groupInstrs[a.Instr] {
			continue
		}
		accs = append(accs, a)
	}
	for _, a := range accs {
		if a.SubErr != nil && !groupInstrs[a.Instr] && a.IsWrite {
			v.Reasons = append(v.Reasons, "non-affine store outside the idiom: "+a.SubErr.Error())
		}
	}
	if len(v.Reasons) > 0 {
		return
	}
	skip := func(a, b affine.Access) bool {
		ga, aOK := groups[a.Instr]
		gb, bOK := groups[b.Instr]
		return aOK && bOK && ga == gb
	}
	v.Reasons = append(v.Reasons, polly.CarriedMemoryDeps(env, pa, loop, accs, skip)...)
	v.Parallel = len(v.Reasons) == 0
}
