package dcart_test

import (
	"sort"
	"testing"
	"testing/quick"

	"dca/internal/dcart"
	"dca/internal/ir"
	"dca/internal/types"
)

// TestSchedulesArePermutations (property): every schedule returns a valid
// permutation of [0, n) for any n.
func TestSchedulesArePermutations(t *testing.T) {
	schedules := append([]dcart.Schedule{dcart.Identity{}, dcart.Rotate{}}, dcart.DefaultSchedules()...)
	for _, s := range schedules {
		s := s
		f := func(n uint8) bool {
			p := s.Permute(int(n))
			if len(p) != int(n) {
				return false
			}
			seen := make([]bool, n)
			for _, x := range p {
				if x < 0 || x >= int(n) || seen[x] {
					return false
				}
				seen[x] = true
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestIdentityAndReverse(t *testing.T) {
	id := dcart.Identity{}.Permute(4)
	rev := dcart.Reverse{}.Permute(4)
	if !sort.IntsAreSorted(id) {
		t.Errorf("identity = %v", id)
	}
	for i, x := range rev {
		if x != 3-i {
			t.Errorf("reverse = %v", rev)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := dcart.Random{Seed: 42}.Permute(16)
	b := dcart.Random{Seed: 42}.Permute(16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same shuffle")
		}
	}
	c := dcart.Random{Seed: 43}.Permute(16)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ (16! >> 1)")
	}
}

func TestSnapshotScalars(t *testing.T) {
	a := dcart.Snapshot([]ir.Value{ir.IntVal(1), ir.BoolVal(true), ir.FloatVal(2.5), ir.StringVal("x"), ir.NilVal()})
	b := dcart.Snapshot([]ir.Value{ir.IntVal(1), ir.BoolVal(true), ir.FloatVal(2.5), ir.StringVal("x"), ir.NilVal()})
	if a != b {
		t.Errorf("equal scalars must snapshot equal:\n%s\n%s", a, b)
	}
	c := dcart.Snapshot([]ir.Value{ir.IntVal(2)})
	if a == c {
		t.Error("different values must snapshot differently")
	}
}

func TestSnapshotIdentityInsensitive(t *testing.T) {
	// Two structurally identical lists built from objects with different
	// allocation IDs must snapshot identically.
	mkList := func(base int64) ir.Value {
		si := types.NewStructInfo("N", []types.FieldInfo{
			{Name: "v", Type: types.IntType},
			{Name: "next", Type: &types.Type{Kind: types.Pointer}},
		})
		var head ir.Value = ir.NilVal()
		for i := 0; i < 3; i++ {
			o := ir.NewStructObject(base+int64(i), si)
			o.Elems[0] = ir.IntVal(int64(10 + i))
			o.Elems[1] = head
			head = ir.RefVal(o)
		}
		return head
	}
	a := dcart.Snapshot([]ir.Value{mkList(100)})
	b := dcart.Snapshot([]ir.Value{mkList(900)})
	if a != b {
		t.Errorf("allocation IDs leaked into the snapshot:\n%s\n%s", a, b)
	}
}

func TestSnapshotObservesMutation(t *testing.T) {
	o := ir.NewArrayObject(1, types.IntType, 3)
	before := dcart.Snapshot([]ir.Value{ir.RefVal(o)})
	o.Elems[1] = ir.IntVal(7)
	after := dcart.Snapshot([]ir.Value{ir.RefVal(o)})
	if before == after {
		t.Error("mutation must change the snapshot")
	}
}

func TestSnapshotCycles(t *testing.T) {
	si := types.NewStructInfo("C", []types.FieldInfo{
		{Name: "next", Type: &types.Type{Kind: types.Pointer}},
	})
	a := ir.NewStructObject(1, si)
	b := ir.NewStructObject(2, si)
	a.Elems[0] = ir.RefVal(b)
	b.Elems[0] = ir.RefVal(a) // cycle
	s := dcart.Snapshot([]ir.Value{ir.RefVal(a)})
	if s == "" {
		t.Fatal("empty snapshot for cycle")
	}
	// Sharing vs copies must be distinguished: a diamond where both fields
	// point to ONE object differs from two identical objects.
	two := types.NewStructInfo("D", []types.FieldInfo{
		{Name: "l", Type: &types.Type{Kind: types.Pointer}},
		{Name: "r", Type: &types.Type{Kind: types.Pointer}},
	})
	leafT := types.NewStructInfo("L", []types.FieldInfo{{Name: "v", Type: types.IntType}})
	shared := ir.NewStructObject(3, two)
	leaf := ir.NewStructObject(4, leafT)
	shared.Elems[0], shared.Elems[1] = ir.RefVal(leaf), ir.RefVal(leaf)
	copies := ir.NewStructObject(5, two)
	copies.Elems[0], copies.Elems[1] = ir.RefVal(ir.NewStructObject(6, leafT)), ir.RefVal(ir.NewStructObject(7, leafT))
	if dcart.Snapshot([]ir.Value{ir.RefVal(shared)}) == dcart.Snapshot([]ir.Value{ir.RefVal(copies)}) {
		t.Error("sharing must be distinguished from structural copies")
	}
}

func TestRuntimeProtocolErrors(t *testing.T) {
	rt := dcart.NewRuntime(dcart.Identity{})
	// rt_iterator_next outside a replay is an error.
	if _, err := rt.Intrinsic(nil, nil, "rt_iterator_next", nil); err == nil {
		t.Error("next outside replay must fail")
	}
	if _, err := rt.Intrinsic(nil, nil, "rt_verify", nil); err == nil {
		t.Error("verify outside invocation must fail")
	}
	if _, err := rt.Intrinsic(nil, nil, "rt_bogus", nil); err == nil {
		t.Error("unknown intrinsic must fail")
	}
}

func TestRuntimeRecordReplay(t *testing.T) {
	rt := dcart.NewRuntime(dcart.Reverse{})
	for i := int64(0); i < 3; i++ {
		if _, err := rt.Intrinsic(nil, nil, "rt_iterator_linearize", []ir.Value{ir.IntVal(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Intrinsic(nil, nil, "rt_iterator_permute", []ir.Value{ir.NilVal()}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		v, err := rt.Intrinsic(nil, nil, "rt_iterator_next", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Bool() {
			break
		}
		x, err := rt.Intrinsic(nil, nil, "rt_iterator_get", []ir.Value{ir.IntVal(0)})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, x.I)
	}
	want := []int64{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order = %v, want %v", got, want)
		}
	}
	if _, err := rt.Intrinsic(nil, nil, "rt_verify", []ir.Value{ir.IntVal(9)}); err != nil {
		t.Fatal(err)
	}
	if rt.Invocations != 1 || len(rt.Snapshots) != 1 || rt.Iterations != 3 {
		t.Errorf("rt state: inv=%d snaps=%d iters=%d", rt.Invocations, len(rt.Snapshots), rt.Iterations)
	}
}
