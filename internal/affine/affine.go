// Package affine implements the affine-loop machinery the static baselines
// (Polly, ICC, Idioms) are built on: induction-variable discovery, linear
// expression extraction for bounds and array subscripts, and classic
// data-dependence tests (ZIV, strong SIV with inner-IV ranges, GCD).
package affine

import (
	"fmt"
	"math"

	"dca/internal/cfg"
	"dca/internal/ir"
	"dca/internal/scalar"
)

// LinExpr is a linear expression c0 + Σ ci·ti where each term ti is either
// a loop induction variable or a loop-invariant symbol.
type LinExpr struct {
	Const  int64
	Coeffs map[*ir.Local]int64
}

// NewLin returns the constant expression c.
func NewLin(c int64) *LinExpr { return &LinExpr{Const: c, Coeffs: map[*ir.Local]int64{}} }

func (e *LinExpr) clone() *LinExpr {
	c := NewLin(e.Const)
	for t, v := range e.Coeffs {
		c.Coeffs[t] = v
	}
	return c
}

func (e *LinExpr) add(o *LinExpr, sign int64) *LinExpr {
	r := e.clone()
	r.Const += sign * o.Const
	for t, v := range o.Coeffs {
		r.Coeffs[t] += sign * v
		if r.Coeffs[t] == 0 {
			delete(r.Coeffs, t)
		}
	}
	return r
}

func (e *LinExpr) scale(k int64) *LinExpr {
	r := NewLin(e.Const * k)
	if k == 0 {
		return r
	}
	for t, v := range e.Coeffs {
		r.Coeffs[t] = v * k
	}
	return r
}

// IsConst reports whether the expression has no symbolic terms.
func (e *LinExpr) IsConst() bool { return len(e.Coeffs) == 0 }

// Coeff returns the coefficient of term t.
func (e *LinExpr) Coeff(t *ir.Local) int64 { return e.Coeffs[t] }

func (e *LinExpr) String() string {
	s := fmt.Sprintf("%d", e.Const)
	for t, v := range e.Coeffs {
		s += fmt.Sprintf(" + %d*%s", v, t.Name)
	}
	return s
}

// LoopInfo is the affine summary of one loop.
type LoopInfo struct {
	Loop *cfg.Loop
	// IV is the primary induction variable (constant step, used in the
	// loop's exit condition); Step is its stride.
	IV   *ir.Local
	Step int64
	// Trip is the static trip count when bounds are constant, else -1.
	Trip int64
	OK   bool
	Why  string
}

// Env extends the scalar env with per-loop affine summaries for one
// function.
type Env struct {
	*scalar.Env
	Fn    *ir.Func
	Loops []*cfg.Loop
	Info  map[*cfg.Loop]*LoopInfo
	// IVSteps maps every discovered induction variable (of any loop in the
	// function) to its constant step (0 = symbolic).
	IVSteps map[*ir.Local]int64
	ivLoop  map[*ir.Local]*cfg.Loop
	defs    map[*ir.Local][]ir.Instr // function-wide single-def map helper
}

// NewEnv analyzes all loops of fn.
func NewEnv(fn *ir.Func) *Env {
	senv := scalar.NewEnv(fn)
	env := &Env{
		Env:     senv,
		Fn:      fn,
		Loops:   senv.G.FindLoops(),
		Info:    map[*cfg.Loop]*LoopInfo{},
		IVSteps: map[*ir.Local]int64{},
		ivLoop:  map[*ir.Local]*cfg.Loop{},
		defs:    map[*ir.Local][]ir.Instr{},
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d != nil {
				env.defs[d] = append(env.defs[d], in)
			}
		}
	}
	for _, l := range env.Loops {
		env.Info[l] = env.analyzeLoop(l)
	}
	return env
}

// analyzeLoop finds the primary IV and trip count.
func (env *Env) analyzeLoop(loop *cfg.Loop) *LoopInfo {
	info := &LoopInfo{Loop: loop, Trip: -1}
	var ivs []scalar.Carried
	for _, c := range scalar.Classify(env.Env, loop) {
		if c.Class == scalar.Induction {
			ivs = append(ivs, c)
			env.IVSteps[c.Local] = c.Step
			env.ivLoop[c.Local] = loop
		}
	}
	// The primary IV appears in the header condition.
	hdrIf, ok := loop.Header.Term.(*ir.If)
	if !ok {
		info.Why = "loop header has no conditional exit"
		return info
	}
	condLocal := hdrIf.Cond.Local
	if condLocal == nil {
		info.Why = "constant loop condition"
		return info
	}
	conds := env.defsIn(condLocal, loop)
	if len(conds) != 1 {
		info.Why = "complex loop condition"
		return info
	}
	cmp, ok := conds[0].(*ir.BinOp)
	if !ok || !cmp.Op.IsComparison() {
		info.Why = "non-comparison loop condition"
		return info
	}
	for _, c := range ivs {
		if c.Step == 0 {
			continue
		}
		if (cmp.X.Local == c.Local || cmp.Y.Local == c.Local) && c.Step != 0 {
			info.IV = c.Local
			info.Step = c.Step
			break
		}
	}
	if info.IV == nil {
		info.Why = "no constant-step induction variable in the loop condition"
		return info
	}
	// Bound side must be loop-invariant and affine.
	var boundOp ir.Operand
	if cmp.X.Local == info.IV {
		boundOp = cmp.Y
	} else {
		boundOp = cmp.X
	}
	bound, err := env.Linearize(boundOp, loop)
	if err != nil {
		info.Why = "non-affine loop bound: " + err.Error()
		return info
	}
	if bound.Coeff(info.IV) != 0 {
		info.Why = "loop bound depends on the induction variable"
		return info
	}
	// Static trip count for constant bounds and a constant IV start.
	if bound.IsConst() {
		if start, ok := env.constStart(info.IV, loop); ok {
			info.Trip = tripCount(start, bound.Const, info.Step, cmp.Op, cmp.X.Local == info.IV)
		}
	}
	info.OK = true
	return info
}

// defsIn returns in-loop defining instructions of l.
func (env *Env) defsIn(l *ir.Local, loop *cfg.Loop) []ir.Instr {
	var out []ir.Instr
	for _, d := range env.defs[l] {
		if loop.Blocks[env.blockOf(d)] {
			out = append(out, d)
		}
	}
	return out
}

func (env *Env) blockOf(in ir.Instr) *ir.Block {
	for _, b := range env.Fn.Blocks {
		for _, i := range b.Instrs {
			if i == in {
				return b
			}
		}
	}
	return nil
}

// constStart finds the constant initial value of an IV: its unique
// definition outside the loop must be a constant move.
func (env *Env) constStart(iv *ir.Local, loop *cfg.Loop) (int64, bool) {
	var outside []ir.Instr
	for _, d := range env.defs[iv] {
		if !loop.Blocks[env.blockOf(d)] {
			outside = append(outside, d)
		}
	}
	if len(outside) != 1 {
		return 0, false
	}
	mv, ok := outside[0].(*ir.Mov)
	if !ok || mv.Src.Local != nil || mv.Src.Const.Kind != ir.KindInt {
		return 0, false
	}
	return mv.Src.Const.I, true
}

func tripCount(start, bound, step int64, op ir.BinKind, ivOnLeft bool) int64 {
	if !ivOnLeft {
		// bound REL iv  ==  iv REL' bound with the comparison flipped.
		switch op {
		case ir.Lt:
			op = ir.Gt
		case ir.Le:
			op = ir.Ge
		case ir.Gt:
			op = ir.Lt
		case ir.Ge:
			op = ir.Le
		}
	}
	switch {
	case step > 0 && op == ir.Lt:
		if bound <= start {
			return 0
		}
		return (bound - start + step - 1) / step
	case step > 0 && op == ir.Le:
		if bound < start {
			return 0
		}
		return (bound-start)/step + 1
	case step < 0 && op == ir.Gt:
		if bound >= start {
			return 0
		}
		return (start - bound - step - 1) / (-step)
	case step < 0 && op == ir.Ge:
		if bound > start {
			return 0
		}
		return (start-bound)/(-step) + 1
	case op == ir.Ne:
		if step != 0 && (bound-start)%step == 0 && (bound-start)/step > 0 {
			return (bound - start) / step
		}
	}
	return -1
}

// Linearize extracts the linear form of an operand with respect to a loop:
// terms are induction variables (of any loop) or locals invariant in the
// given loop. Loads, calls and multi-def temps are non-affine.
func (env *Env) Linearize(o ir.Operand, loop *cfg.Loop) (*LinExpr, error) {
	return env.linearize(o, loop, 0)
}

func (env *Env) linearize(o ir.Operand, loop *cfg.Loop, depth int) (*LinExpr, error) {
	if depth > 24 {
		return nil, fmt.Errorf("expression too deep")
	}
	if o.Local == nil {
		if o.Const.Kind != ir.KindInt {
			return nil, fmt.Errorf("non-integer constant")
		}
		return NewLin(o.Const.I), nil
	}
	l := o.Local
	if _, isIV := env.IVSteps[l]; isIV {
		e := NewLin(0)
		e.Coeffs[l] = 1
		return e, nil
	}
	ds := env.defsIn(l, loop)
	if len(ds) == 0 {
		// Loop-invariant symbol.
		e := NewLin(0)
		e.Coeffs[l] = 1
		return e, nil
	}
	if len(ds) != 1 {
		return nil, fmt.Errorf("%q has multiple in-loop definitions", l.Name)
	}
	switch in := ds[0].(type) {
	case *ir.Mov:
		return env.linearize(in.Src, loop, depth+1)
	case *ir.BinOp:
		switch in.Op {
		case ir.Add, ir.Sub:
			x, err := env.linearize(in.X, loop, depth+1)
			if err != nil {
				return nil, err
			}
			y, err := env.linearize(in.Y, loop, depth+1)
			if err != nil {
				return nil, err
			}
			sign := int64(1)
			if in.Op == ir.Sub {
				sign = -1
			}
			return x.add(y, sign), nil
		case ir.Mul:
			x, err := env.linearize(in.X, loop, depth+1)
			if err != nil {
				return nil, err
			}
			y, err := env.linearize(in.Y, loop, depth+1)
			if err != nil {
				return nil, err
			}
			switch {
			case x.IsConst():
				return y.scale(x.Const), nil
			case y.IsConst():
				return x.scale(y.Const), nil
			}
			return nil, fmt.Errorf("non-linear product")
		case ir.Shl:
			x, err := env.linearize(in.X, loop, depth+1)
			if err != nil {
				return nil, err
			}
			y, err := env.linearize(in.Y, loop, depth+1)
			if err != nil {
				return nil, err
			}
			if y.IsConst() && y.Const >= 0 && y.Const < 62 {
				return x.scale(1 << uint(y.Const)), nil
			}
			return nil, fmt.Errorf("non-constant shift")
		}
		return nil, fmt.Errorf("non-affine operator %s", in.Op)
	}
	return nil, fmt.Errorf("%q defined by a non-affine instruction", l.Name)
}

// Access is one memory access with its affine summary.
type Access struct {
	Instr   ir.Instr
	IsWrite bool
	Base    *ir.Local
	Field   string // non-empty for struct field accesses
	Sub     *LinExpr
	SubErr  error // non-nil when the subscript is not affine
}

// Accesses collects every Load/Store in the loop with affine subscripts
// where extractable.
func (env *Env) Accesses(loop *cfg.Loop) []Access {
	var out []Access
	for _, b := range env.G.RPO {
		if !loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case *ir.Load:
				a := Access{Instr: in, Base: i.Base.Local, Field: i.FieldName}
				a.Sub, a.SubErr = env.Linearize(i.Index, loop)
				out = append(out, a)
			case *ir.Store:
				a := Access{Instr: in, IsWrite: true, Base: i.Base.Local, Field: i.FieldName}
				a.Sub, a.SubErr = env.Linearize(i.Index, loop)
				out = append(out, a)
			}
		}
	}
	return out
}

// Carried decides whether the pair (a, b) — at least one a write — may form
// a loop-carried dependence of the given loop. It assumes both accesses
// target the same object (alias disambiguation happens in the caller).
func (env *Env) Carried(a, b Access, loop *cfg.Loop) bool {
	if a.SubErr != nil || b.SubErr != nil {
		return true // non-affine: assume dependence
	}
	info := env.Info[loop]
	if info == nil || !info.OK {
		return true
	}
	iv := info.IV
	// |MinInt64| is not representable; every derived quantity below (gcd,
	// division bounds) would silently use a wrong magnitude. Bail out to
	// "assume dependence" rather than reason with a saturated coefficient.
	if a.Sub.Coeff(iv) == math.MinInt64 || b.Sub.Coeff(iv) == math.MinInt64 {
		return true
	}
	// delta = b.Sub - a.Sub.
	delta := b.Sub.add(a.Sub, -1)
	ai := a.Sub.Coeff(iv)
	bi := b.Sub.Coeff(iv)
	// Residual terms beyond the tested IV. Inner induction variables take
	// independent values in the two iterations under test, so their range
	// comes from BOTH subscripts' coefficients (a self-pair cancels in
	// delta but still spans the inner iteration space); loop-invariant
	// symbols hold the same value in both iterations, so equal coefficients
	// cancel and unequal ones are unknown.
	rng := int64(0)
	terms := map[*ir.Local]bool{}
	for t := range a.Sub.Coeffs {
		terms[t] = true
	}
	for t := range b.Sub.Coeffs {
		terms[t] = true
	}
	for t := range terms {
		if t == iv {
			continue
		}
		if innerLoop, isIV := env.ivLoop[t]; isIV && innerLoop != loop && loop.Blocks[innerLoop.Header] {
			inner := env.Info[innerLoop]
			if inner != nil && inner.OK && inner.Trip >= 0 {
				c := absInt(a.Sub.Coeff(t))
				if cb := absInt(b.Sub.Coeff(t)); cb > c {
					c = cb
				}
				// Residual extent c*|step|*(trip-1), saturating: a silently
				// wrapped product here can flip "dependence" into
				// "independent", so overflow bails to "assume dependence".
				r, ok := satMul(c, absInt(inner.Step))
				if ok {
					r, ok = satMul(r, inner.Trip-1)
				}
				if ok {
					rng, ok = satAdd(rng, r)
				}
				if !ok {
					return true
				}
				continue
			}
			return true // inner IV with unknown extent
		}
		if delta.Coeff(t) != 0 {
			return true // differing symbolic terms: unknown difference
		}
	}
	d := delta.Const
	// Both tests below reason about the interval [d-rng, d+rng]; if either
	// endpoint is not representable, assume dependence.
	lo, okLo := satAdd(d, -rng)
	hi, okHi := satAdd(d, rng)
	if !okLo || !okHi {
		return true
	}
	switch {
	case ai == bi:
		aa := ai
		if aa == 0 {
			// ZIV: both addresses are IV-independent; dependence iff they
			// can coincide at all (then every iteration conflicts).
			return absInt(d) <= rng
		}
		// Solutions need aa*k ∈ [lo, hi] for k ≠ 0.
		if aa < 0 {
			if lo == math.MinInt64 || hi == math.MinInt64 {
				return true
			}
			aa = -aa
			lo, hi = -hi, -lo
		}
		return hasCarriedK(ceilDiv(lo, aa), floorDiv(hi, aa), info.Trip)
	default:
		// GCD test on bi*i2 - ai*i1 = -d (+rng slack): if gcd(ai,bi) does
		// not divide any value in [lo, hi], no dependence.
		gg := gcd(absInt(ai), absInt(bi))
		if gg == 0 {
			return true
		}
		return hasMultipleInRange(lo, hi, gg)
	}
}

// hasMultipleInRange reports whether [lo, hi] contains a multiple of g,
// for g > 0: one exists iff floor(hi/g) >= ceil(lo/g). Closed form of the
// former O(hi-lo) scan, whose iteration count was proportional to the
// residual range — billions of probes for large inner trip counts.
func hasMultipleInRange(lo, hi, g int64) bool {
	return floorDiv(hi, g) >= ceilDiv(lo, g)
}

// hasCarriedK reports whether [klo, khi] contains a nonzero iteration
// distance k with |k| < trip; trip < 0 means the trip count is unknown and
// any nonzero k qualifies. Closed form of the former O(khi-klo) scan.
func hasCarriedK(klo, khi, trip int64) bool {
	if klo > khi {
		return false
	}
	if trip < 0 {
		return klo < 0 || khi > 0
	}
	if minInt(khi, trip-1) >= maxInt(klo, 1) {
		return true // positive k
	}
	if minInt(khi, -1) >= maxInt(klo, 1-trip) {
		return true // negative k
	}
	return false
}

// absInt returns |x|, saturating at MaxInt64: |MinInt64| is not
// representable, and the negation would silently return MinInt64 itself.
// Saturation is conservative everywhere absInt feeds a range or magnitude
// comparison (a larger residual range only adds dependences); the exact
// tests that need a true magnitude (the IV coefficients) reject MinInt64
// before calling it.
func absInt(x int64) int64 {
	if x == math.MinInt64 {
		return math.MaxInt64
	}
	if x < 0 {
		return -x
	}
	return x
}

// satAdd returns a+b, reporting false when the exact sum overflows int64.
func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// satMul returns a*b, reporting false when the exact product overflows
// int64.
func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// MinInt64 * anything but 1 overflows; the division check below
		// would panic on MinInt64 / -1.
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func minInt(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ceilDiv computes ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q, r := a/b, a%b
	if r != 0 && a > 0 {
		return q + 1
	}
	return q
}

// floorDiv computes floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q, r := a/b, a%b
	if r != 0 && a < 0 {
		return q - 1
	}
	return q
}

// MemReductionGroups finds (Load, BinOp, Store) triples implementing
// "location op= expr" within a single block — including indirect subscripts
// such as histograms h[b[i]] += e — and assigns each triple a group id.
// Both the dependence profilers (dynamically) and the Idioms detector
// (statically) treat carried dependences confined to one group as benign
// reductions.
func MemReductionGroups(fn *ir.Func) map[ir.Instr]int {
	groups := map[ir.Instr]int{}
	seq := 0
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			ld, ok := in.(*ir.Load)
			if !ok {
				continue
			}
			for j := i + 1; j < len(b.Instrs) && j <= i+4; j++ {
				bo, ok := b.Instrs[j].(*ir.BinOp)
				if !ok || !usesLocal(bo, ld.Dst) {
					continue
				}
				switch bo.Op {
				case ir.Add, ir.Mul, ir.BitAnd, ir.BitOr, ir.BitXor, ir.Sub:
				default:
					continue
				}
				for k := j + 1; k < len(b.Instrs) && k <= j+2; k++ {
					st, ok := b.Instrs[k].(*ir.Store)
					if !ok {
						continue
					}
					if st.Src.Local != bo.Dst {
						continue
					}
					if !sameOperand(st.Base, ld.Base) || !sameOperand(st.Index, ld.Index) {
						continue
					}
					seq++
					groups[ld] = seq
					groups[st] = seq
				}
			}
		}
	}
	return groups
}

func usesLocal(in ir.Instr, l *ir.Local) bool {
	for _, u := range in.Uses() {
		if u.Local == l {
			return true
		}
	}
	return false
}

func sameOperand(a, b ir.Operand) bool {
	if a.Local != nil || b.Local != nil {
		return a.Local == b.Local
	}
	return a.Const.Equal(b.Const)
}
