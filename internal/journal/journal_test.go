package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dca/internal/chaos"
)

const testRun = "0123456789abcdef0123456789abcdef"

func mkRecord(i int) (string, int, []byte) {
	return fmt.Sprintf("fn%d", i%5), i, []byte(fmt.Sprintf(`{"verdict":%d,"reason":"r%d"}`, i%8, i))
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fn, idx, data := mkRecord(i)
		if err := j.Append(fn, idx, data); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func checkPrefix(t *testing.T, recs []Record, want int) {
	t.Helper()
	if len(recs) > want {
		t.Fatalf("recovered %d records, wrote only %d", len(recs), want)
	}
	for i, r := range recs {
		fn, idx, data := mkRecord(i)
		if r.Fn != fn || r.Index != idx || string(r.Data) != string(data) {
			t.Fatalf("record %d = {%s %d %s}, want {%s %d %s}", i, r.Fn, r.Index, r.Data, fn, idx, data)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, rec, err := Open(path, testRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Discarded != "" {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	appendN(t, j, 25)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2, err := Open(path, testRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec2.Records) != 25 {
		t.Fatalf("recovered %d records, want 25", len(rec2.Records))
	}
	checkPrefix(t, rec2.Records, 25)
	if rec2.TornBytes != 0 {
		t.Fatalf("TornBytes = %d on a clean journal", rec2.TornBytes)
	}
}

func TestResumeAppendsAfterRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, _, err := Open(path, testRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 10)
	j.Close()

	j2, rec, err := Open(path, testRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d, want 10", len(rec.Records))
	}
	for i := 10; i < 20; i++ {
		fn, idx, data := mkRecord(i)
		if err := j2.Append(fn, idx, data); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()

	_, rec3, err := Open(path, testRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 20 {
		t.Fatalf("second resume recovered %d, want 20", len(rec3.Records))
	}
	checkPrefix(t, rec3.Records, 20)
}

func TestTornTailTruncated(t *testing.T) {
	for name, tail := range map[string]string{
		"no-newline":   `cafecafe {"fn":"x","index":`,
		"bad-crc":      "00000000 {\"fn\":\"x\",\"index\":1,\"data\":{}}\n",
		"not-json":     "d202ef8d garbage\n", // crc of "garbage"
		"half-a-line":  "caf",
		"empty-suffix": "\n\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			j, _, err := Open(path, testRun, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, j, 5)
			j.Close()

			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tail)
			f.Close()

			j2, rec, err := Open(path, testRun, Options{Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Records) != 5 {
				t.Fatalf("recovered %d records, want 5", len(rec.Records))
			}
			if rec.TornBytes == 0 {
				t.Fatal("TornBytes = 0 despite appended garbage")
			}
			checkPrefix(t, rec.Records, 5)
			// The torn tail is gone: appending and re-reading works.
			fn, idx, data := mkRecord(5)
			if err := j2.Append(fn, idx, data); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, rec3, err := Open(path, testRun, Options{Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rec3.Records) != 6 {
				t.Fatalf("after torn-tail repair recovered %d, want 6", len(rec3.Records))
			}
			checkPrefix(t, rec3.Records, 6)
		})
	}
}

func TestHeaderMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, _, err := Open(path, testRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 3)
	j.Close()

	otherRun := "ffffffffffffffffffffffffffffffff"
	j2, rec, err := Open(path, otherRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records across run keys", len(rec.Records))
	}
	if rec.Discarded == "" {
		t.Fatal("mismatched journal not reported as discarded")
	}
	appendN(t, j2, 2)
	j2.Close()

	_, rec3, err := Open(path, otherRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 2 {
		t.Fatalf("fresh journal after discard recovered %d, want 2", len(rec3.Records))
	}
}

func TestRecordVersionMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, _, err := Open(path, testRun, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 3)
	j.Close()

	_, rec, err := Open(path, testRun, Options{Version: 2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Discarded == "" {
		t.Fatalf("cross-version resume returned %+v, want discard", rec)
	}
}

func TestOpenWithoutResumeDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, _, err := Open(path, testRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 3)
	j.Close()

	_, rec, err := Open(path, testRun, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Discarded == "" {
		t.Fatalf("non-resume open returned %+v, want discard", rec)
	}
}

func TestStickyWriteError(t *testing.T) {
	dir := t.TempDir()
	f := chaos.NewFaulty(chaos.OS{}, Plan(5, chaos.EIO, true))
	j, _, err := Open(filepath.Join(dir, "run.wal"), testRun, Options{FS: f, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	ok := 0
	for i := 0; i < 10; i++ {
		fn, idx, data := mkRecord(i)
		if err := j.Append(fn, idx, data); err != nil {
			firstErr = err
			break
		}
		ok++
	}
	if firstErr == nil {
		t.Fatal("no append failed under injected faults")
	}
	// Every later append reports the same sticky error without touching
	// the disk.
	opsBefore := f.Ops()
	fn, idx, data := mkRecord(11)
	if err := j.Append(fn, idx, data); err == nil {
		t.Fatal("append succeeded on a dead journal")
	}
	if f.Ops() != opsBefore {
		t.Fatal("dead journal still issued disk operations")
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after write failure")
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close() nil after write failure")
	}

	// Recovery sees exactly the successfully appended records.
	_, rec, err := Open(j.Path(), testRun, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, rec.Records, ok)
}

// Plan builds the deterministic chaos plan used across the journal tests.
func Plan(at int64, kind chaos.Kind, sticky bool) chaos.Plan {
	return chaos.Plan{FailAt: at, Kind: kind, Sticky: sticky}
}

// TestChaosEveryFaultPoint is the crash-recovery property test: for every
// eligible disk operation of a journal-writing run, and for every fault
// kind, kill the writer at that operation and assert the reopened journal
// recovers exactly the records whose Append succeeded — bounded tail loss,
// never corruption.
func TestChaosEveryFaultPoint(t *testing.T) {
	const n = 12
	writeAll := func(fsys chaos.FS, path string) int {
		j, _, err := Open(path, testRun, Options{FS: fsys, SyncEvery: 3})
		if err != nil {
			return 0
		}
		ok := 0
		for i := 0; i < n; i++ {
			fn, idx, data := mkRecord(i)
			if err := j.Append(fn, idx, data); err != nil {
				break
			}
			ok++
		}
		// No Close: the process "dies" here. (The descriptor leaks for the
		// test's duration; the kernel has every successful write already.)
		return ok
	}

	total := chaos.CountOps(chaos.OS{}, false, func(fsys chaos.FS) {
		writeAll(fsys, filepath.Join(t.TempDir(), "run.wal"))
	})
	if total < int64(n) {
		t.Fatalf("counting run saw only %d ops", total)
	}

	for _, kind := range []chaos.Kind{chaos.EIO, chaos.ENOSPC, chaos.ShortWrite} {
		for at := int64(1); at <= total; at++ {
			t.Run(fmt.Sprintf("%s-op%d", kind, at), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "run.wal")
				f := chaos.NewFaulty(chaos.OS{}, chaos.Plan{FailAt: at, Kind: kind, Sticky: true})
				ok := writeAll(f, path)

				_, rec, err := Open(path, testRun, Options{Resume: true})
				if err != nil {
					// The journal file may not exist at all (fault hit the
					// first open); that is a clean fresh start, not an error.
					if _, serr := os.Stat(path); os.IsNotExist(serr) {
						return
					}
					t.Fatalf("reopen after fault: %v", err)
				}
				// Write-through appends mean every successful Append
				// survives a process kill. One extra record may appear when
				// the injected fault hit the batch fsync *after* that
				// record's write had already reached the kernel — its
				// durability was unconfirmed, not its validity. Nothing torn
				// ever parses back.
				if len(rec.Records) < ok || len(rec.Records) > ok+1 {
					t.Fatalf("recovered %d records, %d appends succeeded", len(rec.Records), ok)
				}
				checkPrefix(t, rec.Records, len(rec.Records))
			})
		}
	}
}

// TestChaosMonkey: under seeded random faults the journal may lose appends
// (reported as errors) but recovery never yields a record that was not
// written, out of order, or corrupt.
func TestChaosMonkey(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			m := chaos.NewMonkey(chaos.OS{}, seed, 0.15, false)
			ok := 0
			if j, _, err := Open(path, testRun, Options{FS: m, SyncEvery: 2}); err == nil {
				for i := 0; i < 20; i++ {
					fn, idx, data := mkRecord(i)
					if err := j.Append(fn, idx, data); err != nil {
						break
					}
					ok++
				}
			}
			_, rec, err := Open(path, testRun, Options{Resume: true})
			if err != nil {
				if _, serr := os.Stat(path); os.IsNotExist(serr) {
					return
				}
				t.Fatalf("reopen: %v", err)
			}
			// Same slack as the deterministic sweep: a failed batch fsync
			// can leave one written-but-unconfirmed record behind.
			if len(rec.Records) < ok || len(rec.Records) > ok+1 {
				t.Fatalf("recovered %d records, %d appends succeeded", len(rec.Records), ok)
			}
			checkPrefix(t, rec.Records, len(rec.Records))
		})
	}
}
