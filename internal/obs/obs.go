// Package obs is the repo's zero-dependency observability layer: typed
// counters, gauges, and histograms with atomic hot paths, a Prometheus
// text-format exposition writer, and a structured per-loop trace-event
// stream (trace.go) that the analysis stack emits and sinks consume —
// `dca serve` turns events into /metrics samples, `dca analyze -trace`
// turns them into JSONL.
//
// Design constraints, in order:
//
//   - Zero third-party dependencies. Everything is stdlib; the exposition
//     format is Prometheus text 0.0.4, which is a plain-text contract, not
//     a library contract.
//   - Atomic hot paths. Counter.Inc, Gauge.Set, and Histogram.Observe are
//     single atomic operations (a short CAS loop for the histogram sum);
//     no locks are taken while the analysis engine is running. Locks exist
//     only at registration time and at scrape time.
//   - Bounded cardinality. Labeled metrics carry exactly one label, and
//     every label value comes from a closed set the code controls (trap
//     kinds, verdict names, cache outcomes) — never from user input such
//     as filenames or loop IDs. High-cardinality identity lives in the
//     trace stream, not in metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// collector is one registered metric family: a name, a help string, a
// Prometheus type, and the ability to write its current samples.
type collector interface {
	name() string
	help() string
	typ() string
	collect(w io.Writer)
}

// Registry holds metric families in registration order and renders them in
// Prometheus text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]collector
	order  []collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]collector{}}
}

func (r *Registry) register(c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[c.name()]; dup {
		panic("obs: duplicate metric " + c.name())
	}
	r.byName[c.name()] = c
	r.order = append(r.order, c)
}

// Counter registers a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// CounterVec registers a counter family with one label. Children are
// created on first use; label values must come from a closed, code-owned
// set (see the package cardinality policy).
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, hp: help, label: label, children: map[string]*atomic.Uint64{}}
	r.register(v)
	return v
}

// Gauge registers an integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for instruments the owner already maintains (pool occupancy, drain state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, hp: help, kind: "gauge", fn: fn})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic — it adapts external counters (e.g. the
// verdict cache's) into the registry rather than duplicating them.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, hp: help, kind: "counter", fn: fn})
}

// Histogram registers a cumulative histogram with the given upper bounds
// (nil selects DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{nm: name, hp: help, bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
	r.register(h)
	return h
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format 0.0.4, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]collector, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	for _, c := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name(), c.help(), c.name(), c.typ())
		c.collect(w)
	}
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// --------------------------------------------------------------- counter

// Counter is a monotonically increasing counter with an atomic hot path.
type Counter struct {
	nm, hp string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) typ() string  { return "counter" }
func (c *Counter) collect(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// CounterVec is a counter family keyed by one label value.
type CounterVec struct {
	nm, hp, label string

	mu       sync.RWMutex
	children map[string]*atomic.Uint64
}

// With returns the child counter cell for a label value, creating it on
// first use. The returned cell supports atomic Add via With(...).Add(1) —
// callers typically use the Inc/Add helpers below.
func (v *CounterVec) with(value string) *atomic.Uint64 {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; !ok {
		c = &atomic.Uint64{}
		v.children[value] = c
	}
	return c
}

// Inc adds one to the child with the given label value.
func (v *CounterVec) Inc(value string) { v.with(value).Add(1) }

// Add adds n to the child with the given label value.
func (v *CounterVec) Add(value string, n uint64) { v.with(value).Add(n) }

// Value returns the child's current count (0 if never touched).
func (v *CounterVec) Value(value string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.children[value]; ok {
		return c.Load()
	}
	return 0
}

func (v *CounterVec) name() string { return v.nm }
func (v *CounterVec) help() string { return v.hp }
func (v *CounterVec) typ() string  { return "counter" }
func (v *CounterVec) collect(w io.Writer) {
	v.mu.RLock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	lines := make([]string, 0, len(vals))
	for _, val := range vals {
		lines = append(lines, fmt.Sprintf("%s{%s=\"%s\"} %d\n", v.nm, v.label, escapeLabel(val), v.children[val].Load()))
	}
	v.mu.RUnlock()
	for _, l := range lines {
		io.WriteString(w, l)
	}
}

// ----------------------------------------------------------------- gauge

// Gauge is an integer gauge with an atomic hot path.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) typ() string  { return "gauge" }
func (g *Gauge) collect(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

// funcMetric adapts an externally maintained value into the registry,
// sampling it at scrape time.
type funcMetric struct {
	nm, hp, kind string
	fn           func() float64
}

func (f *funcMetric) name() string { return f.nm }
func (f *funcMetric) help() string { return f.hp }
func (f *funcMetric) typ() string  { return f.kind }
func (f *funcMetric) collect(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", f.nm, formatFloat(f.fn()))
}

// ------------------------------------------------------------- histogram

// DefBuckets are the default histogram bounds, in seconds — tuned for
// interpreter executions that span sub-millisecond cache probes to
// multi-second replays.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a cumulative histogram. Observe is lock-free: a bucket
// increment, a count increment, and a CAS loop folding the observation
// into the float sum.
type Histogram struct {
	nm, hp  string
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, plus a final +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }
func (h *Histogram) typ() string  { return "histogram" }
func (h *Histogram) collect(w io.Writer) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
}

// ----------------------------------------------------------------- utils

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format. Values are
// code-owned, so this is defence in depth, not a parsing layer.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\n\"") {
		return s
	}
	r := strings.NewReplacer("\\", `\\`, "\n", `\n`, "\"", `\"`)
	return r.Replace(s)
}
