package lexer_test

import (
	"testing"
	"testing/quick"

	"dca/internal/lexer"
	"dca/internal/source"
	"dca/internal/token"
)

func scan(t *testing.T, src string) ([]token.Token, *source.DiagList) {
	t.Helper()
	diags := &source.DiagList{}
	toks := lexer.New(source.NewFile("t.mc", src), diags).Scan()
	return toks, diags
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	toks, diags := scan(t, "+ - * / % = += -= *= /= %= ++ -- == != < > <= >= && || ! & | ^ << >> ( ) { } [ ] , ; . -> :")
	if !diags.Empty() {
		t.Fatalf("diags: %v", diags)
	}
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ,
		token.PERCENTEQ, token.PLUSPLUS, token.MINUSMINUS,
		token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ,
		token.ANDAND, token.OROR, token.NOT, token.AMP, token.PIPE, token.CARET,
		token.SHL, token.SHR,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMICOLON,
		token.DOT, token.ARROW, token.COLON, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, diags := scan(t, "func struct var if else while for return break continue new nil true false print int float bool string foo _bar x9")
	if !diags.Empty() {
		t.Fatalf("diags: %v", diags)
	}
	got := kinds(toks)
	wantPrefix := []token.Kind{
		token.KwFunc, token.KwStruct, token.KwVar, token.KwIf, token.KwElse,
		token.KwWhile, token.KwFor, token.KwReturn, token.KwBreak,
		token.KwContinue, token.KwNew, token.KwNil, token.KwTrue,
		token.KwFalse, token.KwPrint, token.KwInt, token.KwFloat,
		token.KwBool, token.KwString, token.IDENT, token.IDENT, token.IDENT,
	}
	for i, w := range wantPrefix {
		if got[i] != w {
			t.Errorf("token %d = %s, want %s", i, got[i], w)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, diags := scan(t, "0 42 3.14 1e6 2.5e-3 7e+2 9.")
	if !diags.Empty() {
		t.Fatalf("diags: %v", diags)
	}
	want := []struct {
		kind token.Kind
		text string
	}{
		{token.INT, "0"}, {token.INT, "42"}, {token.FLOAT, "3.14"},
		{token.FLOAT, "1e6"}, {token.FLOAT, "2.5e-3"}, {token.FLOAT, "7e+2"},
		{token.INT, "9"}, {token.DOT, "."},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks, diags := scan(t, `"hello" "a\nb" "q\"q" "t\tt" "back\\slash"`)
	if !diags.Empty() {
		t.Fatalf("diags: %v", diags)
	}
	want := []string{"hello", "a\nb", `q"q`, "t\tt", `back\slash`}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Text != w {
			t.Errorf("string %d = %q (%s), want %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestComments(t *testing.T) {
	toks, diags := scan(t, "a // line comment\nb /* block\ncomment */ c")
	if !diags.Empty() {
		t.Fatalf("diags: %v", diags)
	}
	got := kinds(toks)
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := scan(t, "a\n  bb\n")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"@", "illegal character"},
		{`"unterminated`, "unterminated string"},
		{"/* open", "unterminated block comment"},
		{`"\q"`, "unknown escape"},
	}
	for _, c := range cases {
		_, diags := scan(t, c.src)
		if diags.Empty() {
			t.Errorf("%q: expected diagnostic containing %q", c.src, c.want)
		}
	}
}

// TestScanTerminates (property): the lexer always terminates and ends with
// EOF, for arbitrary input bytes.
func TestScanTerminates(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 4096 {
			src = src[:4096]
		}
		diags := &source.DiagList{}
		toks := lexer.New(source.NewFile("q.mc", src), diags).Scan()
		return len(toks) >= 1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOffsetsMonotonic (property): token offsets never decrease.
func TestOffsetsMonotonic(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 2048 {
			src = src[:2048]
		}
		diags := &source.DiagList{}
		toks := lexer.New(source.NewFile("q.mc", src), diags).Scan()
		last := -1
		for _, tk := range toks[:len(toks)-1] {
			if tk.Pos.Offset < last {
				return false
			}
			last = tk.Pos.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
